package index

import (
	"fmt"
	"math"

	"gpssn/internal/model"
	"gpssn/internal/pagesim"
	"gpssn/internal/roadnet"
	"gpssn/internal/socialnet"
)

// SocialConfig parameterizes BuildSocial.
type SocialConfig struct {
	// RoadPivots is the shared road pivot table (users store their
	// dist_RN(u_j, rp_k) per Section 4.1). Usually RoadIndex.Pivots.
	RoadPivots *roadnet.PivotTable
	// SocialPivots are the social pivot users sp_1..sp_l.
	SocialPivots []socialnet.UserID
	// LeafSize is the target users per leaf partition (default 64).
	LeafSize int
	// Fanout is the non-leaf branching factor (default 8).
	Fanout int
	// PageSize and PoolPages configure the page store (defaults 4096/128).
	PageSize, PoolPages int
}

func (c SocialConfig) withDefaults() SocialConfig {
	if c.LeafSize == 0 {
		c.LeafSize = 64
	}
	if c.Fanout == 0 {
		c.Fanout = 8
	}
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.PoolPages == 0 {
		c.PoolPages = 128
	}
	return c
}

// SNode is a node of the I_S partition tree. Leaves hold the users of one
// graph partition; non-leaves hold children. Every node carries the
// Section 4.1 aggregates: the interest MBR [LbW, UbW] of Eqs. (9)-(10),
// the social pivot hop bounds of Eqs. (11)-(12), and the road pivot
// distance bounds of Eqs. (13)-(14).
type SNode struct {
	Obj      pagesim.ObjectID
	Level    int // 0 for leaves
	Children []*SNode
	Users    []socialnet.UserID

	LbW, UbW     []float64
	LbHop, UbHop []int32
	LbRD, UbRD   []float64
	// UserCount is the number of users under the node.
	UserCount int
}

// IsLeaf reports whether n is a leaf.
func (n *SNode) IsLeaf() bool { return len(n.Children) == 0 }

// SocialIndex is the I_S index.
type SocialIndex struct {
	DS         *model.Dataset
	Root       *SNode
	HopPivots  *socialnet.HopPivotTable
	RoadPivots *roadnet.PivotTable
	Store      *pagesim.Store

	cfg      SocialConfig
	userHops [][]int32   // [user][l]
	userRD   [][]float64 // [user][h]
	height   int
}

// BuildSocial constructs I_S over the dataset's users.
func BuildSocial(ds *model.Dataset, cfg SocialConfig) (*SocialIndex, error) {
	if cfg.RoadPivots == nil {
		return nil, fmt.Errorf("index: social index needs the road pivot table")
	}
	if len(cfg.SocialPivots) == 0 {
		return nil, fmt.Errorf("index: social index needs at least one social pivot")
	}
	if ds.Social.NumUsers() == 0 {
		return nil, fmt.Errorf("index: dataset has no users")
	}
	c := cfg.withDefaults()

	ix := &SocialIndex{
		DS:         ds,
		RoadPivots: cfg.RoadPivots,
		Store:      pagesim.NewStore(c.PageSize, c.PoolPages),
		cfg:        c,
	}
	ix.HopPivots = socialnet.BuildHopPivotTable(ds.Social, c.SocialPivots)

	// Per-user pivot vectors.
	nu := ds.Social.NumUsers()
	ix.userHops = make([][]int32, nu)
	ix.userRD = make([][]float64, nu)
	for u := 0; u < nu; u++ {
		ix.userHops[u] = ix.HopPivots.UserVector(socialnet.UserID(u))
		ix.userRD[u] = ix.RoadPivots.AttachDistAll(ds.Road, ds.Users[u].At)
	}

	// Leaves from graph partitioning, then recursive grouping. Leaves are
	// ordered by interest-centroid proximity (greedy nearest-neighbour
	// chaining) before chunking into parents, so parent interest MBRs stay
	// tight and the Lemma 8 index-level pruning keeps its power.
	parts := socialnet.Partition(ds.Social, c.LeafSize)
	nodes := make([]*SNode, len(parts))
	for i, part := range parts {
		n := &SNode{Level: 0, Users: part}
		ix.computeLeafAggregates(n)
		nodes[i] = n
	}
	nodes = ix.chainByInterest(nodes)
	level := 0
	for len(nodes) > 1 {
		level++
		var parents []*SNode
		for i := 0; i < len(nodes); i += c.Fanout {
			j := i + c.Fanout
			if j > len(nodes) {
				j = len(nodes)
			}
			p := &SNode{Level: level, Children: nodes[i:j:j]}
			ix.computeParentAggregates(p)
			parents = append(parents, p)
		}
		nodes = parents
	}
	ix.Root = nodes[0]
	ix.height = ix.Root.Level + 1
	ix.placeNodes()
	return ix, nil
}

// chainByInterest orders leaves by greedy nearest-neighbour chaining on
// their interest centroids (L1 distance), so sequential chunking yields
// parents of interest-coherent leaves.
func (ix *SocialIndex) chainByInterest(leaves []*SNode) []*SNode {
	if len(leaves) <= 2 {
		return leaves
	}
	d := ix.DS.NumTopics
	centroid := make([][]float64, len(leaves))
	for i, n := range leaves {
		c := make([]float64, d)
		for _, u := range n.Users {
			for f, p := range ix.DS.Users[u].Interests {
				c[f] += p
			}
		}
		for f := range c {
			c[f] /= float64(len(n.Users))
		}
		centroid[i] = c
	}
	l1 := func(a, b []float64) float64 {
		s := 0.0
		for f := range a {
			s += math.Abs(a[f] - b[f])
		}
		return s
	}
	used := make([]bool, len(leaves))
	order := make([]*SNode, 0, len(leaves))
	cur := 0
	used[0] = true
	order = append(order, leaves[0])
	for len(order) < len(leaves) {
		best, bestD := -1, math.Inf(1)
		for j := range leaves {
			if used[j] {
				continue
			}
			if dd := l1(centroid[cur], centroid[j]); dd < bestD {
				best, bestD = j, dd
			}
		}
		used[best] = true
		order = append(order, leaves[best])
		cur = best
	}
	return order
}

func (ix *SocialIndex) computeLeafAggregates(n *SNode) {
	d := ix.DS.NumTopics
	l := ix.HopPivots.NumPivots()
	h := ix.RoadPivots.NumPivots()
	n.LbW, n.UbW = make([]float64, d), make([]float64, d)
	n.LbHop, n.UbHop = make([]int32, l), make([]int32, l)
	n.LbRD, n.UbRD = make([]float64, h), make([]float64, h)
	for f := 0; f < d; f++ {
		n.LbW[f] = math.Inf(1)
	}
	for k := 0; k < h; k++ {
		n.LbRD[k] = math.Inf(1)
		n.UbRD[k] = math.Inf(-1)
	}
	n.UserCount = len(n.Users)
	for _, u := range n.Users {
		w := ix.DS.Users[u].Interests
		for f := 0; f < d; f++ {
			n.LbW[f] = math.Min(n.LbW[f], w[f])
			n.UbW[f] = math.Max(n.UbW[f], w[f])
		}
		for k := 0; k < h; k++ {
			rd := ix.userRD[u][k]
			n.LbRD[k] = math.Min(n.LbRD[k], rd)
			n.UbRD[k] = math.Max(n.UbRD[k], rd)
		}
	}
	// Hop bounds per pivot: LbHop is the minimum finite hop (MaxInt32 when
	// every user is unreachable from the pivot); UbHop is the maximum
	// finite hop, or Unreachable when the node contains any user the pivot
	// cannot see (the interval then extends to +∞).
	for k := 0; k < l; k++ {
		lb := int32(math.MaxInt32)
		ubFinite := int32(0)
		hasInf := false
		for _, u := range n.Users {
			hop := ix.userHops[u][k]
			if hop == socialnet.Unreachable {
				hasInf = true
				continue
			}
			if hop < lb {
				lb = hop
			}
			if hop > ubFinite {
				ubFinite = hop
			}
		}
		n.LbHop[k] = lb
		if hasInf {
			n.UbHop[k] = socialnet.Unreachable
		} else {
			n.UbHop[k] = ubFinite
		}
	}
}

func (ix *SocialIndex) computeParentAggregates(n *SNode) {
	d := ix.DS.NumTopics
	l := ix.HopPivots.NumPivots()
	h := ix.RoadPivots.NumPivots()
	n.LbW, n.UbW = make([]float64, d), make([]float64, d)
	n.LbHop, n.UbHop = make([]int32, l), make([]int32, l)
	n.LbRD, n.UbRD = make([]float64, h), make([]float64, h)
	for f := 0; f < d; f++ {
		n.LbW[f] = math.Inf(1)
	}
	for k := 0; k < l; k++ {
		n.LbHop[k] = math.MaxInt32
	}
	for k := 0; k < h; k++ {
		n.LbRD[k] = math.Inf(1)
		n.UbRD[k] = math.Inf(-1)
	}
	for _, c := range n.Children {
		n.UserCount += c.UserCount
		for f := 0; f < d; f++ {
			n.LbW[f] = math.Min(n.LbW[f], c.LbW[f])
			n.UbW[f] = math.Max(n.UbW[f], c.UbW[f])
		}
		for k := 0; k < l; k++ {
			if c.LbHop[k] < n.LbHop[k] {
				n.LbHop[k] = c.LbHop[k]
			}
			if c.UbHop[k] == socialnet.Unreachable {
				n.UbHop[k] = socialnet.Unreachable
			} else if n.UbHop[k] != socialnet.Unreachable && c.UbHop[k] > n.UbHop[k] {
				n.UbHop[k] = c.UbHop[k]
			}
		}
		for k := 0; k < h; k++ {
			n.LbRD[k] = math.Min(n.LbRD[k], c.LbRD[k])
			n.UbRD[k] = math.Max(n.UbRD[k], c.UbRD[k])
		}
	}
}

// placeNodes registers nodes with the page store in BFS order, one page
// per node (the classic node-fits-a-page I/O model the paper's page-access
// counts assume).
func (ix *SocialIndex) placeNodes() {
	var next pagesim.ObjectID
	queue := []*SNode{ix.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		n.Obj = next
		next++
		if !n.IsLeaf() {
			queue = append(queue, n.Children...)
		}
		ix.Store.Place(n.Obj, ix.Store.PageSize())
	}
}

// Access charges a node visit to the page store's shared counters. Not
// safe for concurrent use; the query engine uses AccessTracked instead.
func (ix *SocialIndex) Access(n *SNode) { ix.Store.Access(n.Obj) }

// AccessTracked charges a node visit to a per-query tracker. Safe for
// concurrent use with distinct trackers once the index is built.
func (ix *SocialIndex) AccessTracked(n *SNode, t *pagesim.Tracker) {
	ix.Store.AccessTracked(n.Obj, t)
}

// UserHops returns the social pivot hop vector of a user (read-only).
func (ix *SocialIndex) UserHops(u socialnet.UserID) []int32 { return ix.userHops[u] }

// UserRoadDist returns the road pivot distance vector of a user.
func (ix *SocialIndex) UserRoadDist(u socialnet.UserID) []float64 { return ix.userRD[u] }

// Height returns the number of levels (1 for a single-leaf tree).
func (ix *SocialIndex) Height() int { return ix.height }

// HopLowerBoundToNode returns Eq. (19): a lower bound on the hop distance
// from the query user (given its pivot hop vector) to any user under the
// node. The second result is false when the bound proves nothing (e.g.
// pivots unreachable from the query user).
func (ix *SocialIndex) HopLowerBoundToNode(qHops []int32, n *SNode) (int32, bool) {
	var lb int32
	informative := false
	for k := range qHops {
		q := qHops[k]
		if q == socialnet.Unreachable {
			// Pivot cannot see the query user: if the node has any user
			// reachable from this pivot, those users are provably in a
			// different component than u_q... only if u_q's component
			// misses the pivot entirely. That direction is handled during
			// refinement; here we skip the pivot.
			continue
		}
		nodeLb, nodeUb := n.LbHop[k], n.UbHop[k]
		if nodeLb == math.MaxInt32 {
			// Every user under the node is unreachable from pivot k while
			// u_q is reachable: different components, infinite distance.
			return math.MaxInt32, true
		}
		informative = true
		var cand int32
		switch {
		case q < nodeLb:
			cand = nodeLb - q
		case nodeUb != socialnet.Unreachable && q > nodeUb:
			cand = q - nodeUb
		default:
			cand = 0
		}
		if cand > lb {
			lb = cand
		}
	}
	return lb, informative
}
