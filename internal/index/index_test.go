package index

import (
	"math"
	"testing"

	"gpssn/internal/gen"
	"gpssn/internal/model"
	"gpssn/internal/pivot"
	"gpssn/internal/roadnet"
	"gpssn/internal/rtree"
	"gpssn/internal/socialnet"
	"gpssn/internal/topics"
)

// testDataset caches a small synthetic dataset for the package's tests.
var testDS *model.Dataset

func dataset(t testing.TB) *model.Dataset {
	t.Helper()
	if testDS == nil {
		d, err := gen.Synthetic(gen.Config{
			Name: "idx-test", Seed: 42,
			RoadVertices: 500, SocialUsers: 400, POIs: 300, Topics: 8,
		})
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		testDS = d
	}
	return testDS
}

func buildRoad(t testing.TB, ds *model.Dataset) *RoadIndex {
	t.Helper()
	pivots := pivot.RandomRoad(ds.Road, 4, 7)
	ix, err := BuildRoad(ds, RoadConfig{Pivots: pivots, RMin: 0.5, RMax: 4})
	if err != nil {
		t.Fatalf("BuildRoad: %v", err)
	}
	return ix
}

func buildSocial(t testing.TB, ds *model.Dataset, road *RoadIndex) *SocialIndex {
	t.Helper()
	sp := pivot.RandomSocial(ds.Social, 4, 8)
	ix, err := BuildSocial(ds, SocialConfig{
		RoadPivots: road.Pivots, SocialPivots: sp, LeafSize: 32, Fanout: 4,
	})
	if err != nil {
		t.Fatalf("BuildSocial: %v", err)
	}
	return ix
}

func TestBuildRoadRejectsBadConfig(t *testing.T) {
	ds := dataset(t)
	if _, err := BuildRoad(ds, RoadConfig{RMin: 1, RMax: 2}); err == nil {
		t.Error("no pivots should fail")
	}
	p := pivot.RandomRoad(ds.Road, 2, 1)
	if _, err := BuildRoad(ds, RoadConfig{Pivots: p, RMin: 0, RMax: 2}); err == nil {
		t.Error("RMin=0 should fail")
	}
	if _, err := BuildRoad(ds, RoadConfig{Pivots: p, RMin: 3, RMax: 2}); err == nil {
		t.Error("RMin>RMax should fail")
	}
}

func TestRoadIndexNodeBoundsSound(t *testing.T) {
	ds := dataset(t)
	ix := buildRoad(t, ds)
	h := ix.Pivots.NumPivots()
	var walk func(n *rtree.Node)
	walk = func(n *rtree.Node) {
		m := ix.Meta(n)
		// Node bounds must bracket every member POI's pivot distances, and
		// the node Sup must contain every member's sup keywords.
		var check func(nn *rtree.Node)
		check = func(nn *rtree.Node) {
			if nn.IsLeaf() {
				for _, e := range nn.Entries() {
					id := model.POIID(e.ID)
					for k := 0; k < h; k++ {
						dk := ix.POIDist(id)[k]
						if dk < m.LbDist[k]-1e-9 || dk > m.UbDist[k]+1e-9 {
							t.Fatalf("POI %d dist %v outside node bounds [%v,%v]",
								id, dk, m.LbDist[k], m.UbDist[k])
						}
					}
					for f := 0; f < ds.NumTopics; f++ {
						if ix.POISup(id).Has(f) && !m.Sup.Has(f) {
							t.Fatalf("node Sup missing topic %d of POI %d", f, id)
						}
						if ix.POISup(id).Has(f) && !m.SupVec.TestKeyword(f) {
							t.Fatalf("node SupVec missing topic %d", f)
						}
					}
				}
				return
			}
			for _, e := range nn.Entries() {
				check(e.Child)
			}
		}
		check(n)
		if !n.IsLeaf() {
			for _, e := range n.Entries() {
				walk(e.Child)
			}
		}
	}
	walk(ix.Tree.Root())
}

func TestRoadIndexPOICount(t *testing.T) {
	ds := dataset(t)
	ix := buildRoad(t, ds)
	if got := ix.Meta(ix.Tree.Root()).POICount; got != len(ds.POIs) {
		t.Errorf("root POICount = %d, want %d", got, len(ds.POIs))
	}
}

func TestRoadIndexSupIsSupersetOfBall(t *testing.T) {
	// For a sample of POIs: every keyword of every POI within road distance
	// 2*RMax must appear in sup_K (soundness of the Euclidean
	// over-approximation).
	ds := dataset(t)
	ix := buildRoad(t, ds)
	for i := 0; i < len(ds.POIs); i += 37 {
		p := &ds.POIs[i]
		atts := make([]roadnet.Attach, len(ds.POIs))
		for j := range ds.POIs {
			atts[j] = ds.POIs[j].At
		}
		dists := ds.Road.DistAttachWithin(p.At, 2*ix.RMax, atts)
		for j := range ds.POIs {
			if math.IsInf(dists[j], 1) {
				continue
			}
			for _, k := range ds.POIs[j].Keywords {
				if !ix.POISup(model.POIID(i)).Has(k) {
					t.Fatalf("POI %d sup missing keyword %d of in-ball POI %d", i, k, j)
				}
			}
		}
	}
}

func TestRoadIndexSubIsSubsetOfBall(t *testing.T) {
	// sub_K must only contain keywords of POIs truly within RMin (soundness
	// of the lower bound).
	ds := dataset(t)
	ix := buildRoad(t, ds)
	for i := 0; i < len(ds.POIs); i += 31 {
		p := &ds.POIs[i]
		atts := make([]roadnet.Attach, len(ds.POIs))
		for j := range ds.POIs {
			atts[j] = ds.POIs[j].At
		}
		dists := ds.Road.DistAttachWithin(p.At, ix.RMin, atts)
		ball := topics.NewSet(ds.NumTopics)
		for j := range ds.POIs {
			if !math.IsInf(dists[j], 1) {
				for _, k := range ds.POIs[j].Keywords {
					ball.Add(k)
				}
			}
		}
		for f := 0; f < ds.NumTopics; f++ {
			if ix.POISub(model.POIID(i), ix.RMin).Has(f) && !ball.Has(f) {
				t.Fatalf("POI %d sub has keyword %d not in its RMin ball", i, f)
			}
		}
	}
}

func TestRoadIndexAccessCountsIO(t *testing.T) {
	ds := dataset(t)
	ix := buildRoad(t, ds)
	ix.Store.ResetStats()
	ix.Store.DropPool()
	ix.Access(ix.Tree.Root())
	if ix.Store.Reads() == 0 {
		t.Error("accessing the root should cost at least one page read")
	}
	ix.Store.ResetStats()
	ix.Access(ix.Tree.Root())
	if ix.Store.Reads() != 0 {
		t.Error("second access should hit the warm pool")
	}
}

func TestRoadIndexMetaForeignNodePanics(t *testing.T) {
	ds := dataset(t)
	ix := buildRoad(t, ds)
	other := rtree.New(rtree.Options{})
	defer func() {
		if recover() == nil {
			t.Error("foreign node should panic")
		}
	}()
	ix.Meta(other.Root())
}

func TestBuildSocialRejectsBadConfig(t *testing.T) {
	ds := dataset(t)
	road := buildRoad(t, ds)
	if _, err := BuildSocial(ds, SocialConfig{SocialPivots: []socialnet.UserID{0}}); err == nil {
		t.Error("missing road pivots should fail")
	}
	if _, err := BuildSocial(ds, SocialConfig{RoadPivots: road.Pivots}); err == nil {
		t.Error("missing social pivots should fail")
	}
}

func TestSocialIndexCoversAllUsers(t *testing.T) {
	ds := dataset(t)
	road := buildRoad(t, ds)
	ix := buildSocial(t, ds, road)
	if ix.Root.UserCount != ds.Social.NumUsers() {
		t.Errorf("root UserCount = %d, want %d", ix.Root.UserCount, ds.Social.NumUsers())
	}
	seen := map[socialnet.UserID]bool{}
	var walk func(n *SNode)
	walk = func(n *SNode) {
		if n.IsLeaf() {
			for _, u := range n.Users {
				if seen[u] {
					t.Fatalf("user %d appears in two leaves", u)
				}
				seen[u] = true
			}
			return
		}
		for _, c := range n.Children {
			if c.Level != n.Level-1 {
				t.Fatalf("child level %d under level %d", c.Level, n.Level)
			}
			walk(c)
		}
	}
	walk(ix.Root)
	if len(seen) != ds.Social.NumUsers() {
		t.Errorf("leaves cover %d users, want %d", len(seen), ds.Social.NumUsers())
	}
}

func TestSocialIndexAggregatesSound(t *testing.T) {
	ds := dataset(t)
	road := buildRoad(t, ds)
	ix := buildSocial(t, ds, road)
	l := ix.HopPivots.NumPivots()
	h := ix.RoadPivots.NumPivots()
	var walk func(n *SNode)
	walk = func(n *SNode) {
		var users []socialnet.UserID
		var collect func(nn *SNode)
		collect = func(nn *SNode) {
			users = append(users, nn.Users...)
			for _, c := range nn.Children {
				collect(c)
			}
		}
		collect(n)
		for _, u := range users {
			w := ds.Users[u].Interests
			for f := range w {
				if w[f] < n.LbW[f]-1e-12 || w[f] > n.UbW[f]+1e-12 {
					t.Fatalf("user %d interest %d = %v outside [%v,%v]", u, f, w[f], n.LbW[f], n.UbW[f])
				}
			}
			for k := 0; k < l; k++ {
				hop := ix.UserHops(u)[k]
				if hop == socialnet.Unreachable {
					if n.UbHop[k] != socialnet.Unreachable {
						t.Fatalf("node misses ∞ hop marker for pivot %d", k)
					}
					continue
				}
				if hop < n.LbHop[k] {
					t.Fatalf("user %d hop %d < node lb %d", u, hop, n.LbHop[k])
				}
				if n.UbHop[k] != socialnet.Unreachable && hop > n.UbHop[k] {
					t.Fatalf("user %d hop %d > node ub %d", u, hop, n.UbHop[k])
				}
			}
			for k := 0; k < h; k++ {
				rd := ix.UserRoadDist(u)[k]
				if rd < n.LbRD[k]-1e-9 || rd > n.UbRD[k]+1e-9 {
					t.Fatalf("user %d road dist %v outside [%v,%v]", u, rd, n.LbRD[k], n.UbRD[k])
				}
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(ix.Root)
}

func TestHopLowerBoundToNodeSound(t *testing.T) {
	ds := dataset(t)
	road := buildRoad(t, ds)
	ix := buildSocial(t, ds, road)
	// For a handful of query users, the node lower bound must never exceed
	// the true minimum hop distance to any user under the node.
	for _, q := range []socialnet.UserID{0, 17, 101, 399} {
		trueHops := ds.Social.BFSHops(q)
		qh := ix.UserHops(q)
		var walk func(n *SNode)
		walk = func(n *SNode) {
			lb, informative := ix.HopLowerBoundToNode(qh, n)
			if informative {
				// min true hop distance over users under node.
				minHop := int32(math.MaxInt32)
				var collect func(nn *SNode)
				collect = func(nn *SNode) {
					for _, u := range nn.Users {
						if th := trueHops[u]; th != socialnet.Unreachable && th < minHop {
							minHop = th
						}
					}
					for _, c := range nn.Children {
						collect(c)
					}
				}
				collect(n)
				if lb != math.MaxInt32 && minHop != math.MaxInt32 && lb > minHop {
					t.Fatalf("q=%d: node lb %d > true min hop %d", q, lb, minHop)
				}
				if lb == math.MaxInt32 && minHop != math.MaxInt32 {
					t.Fatalf("q=%d: node claimed unreachable but min hop %d", q, minHop)
				}
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(ix.Root)
	}
}

func TestSocialIndexHeight(t *testing.T) {
	ds := dataset(t)
	road := buildRoad(t, ds)
	ix := buildSocial(t, ds, road)
	if ix.Height() < 2 {
		t.Errorf("Height = %d; 400 users at leaf 32 should give multiple levels", ix.Height())
	}
	if ix.Root.Level != ix.Height()-1 {
		t.Errorf("root level %d inconsistent with height %d", ix.Root.Level, ix.Height())
	}
}

func TestSocialIndexIOAccounting(t *testing.T) {
	ds := dataset(t)
	road := buildRoad(t, ds)
	ix := buildSocial(t, ds, road)
	ix.Store.ResetStats()
	ix.Store.DropPool()
	ix.Access(ix.Root)
	for _, c := range ix.Root.Children {
		ix.Access(c)
	}
	if ix.Store.Reads() == 0 {
		t.Error("cold traversal should cost page reads")
	}
}
