// Package index implements the two GP-SSN indexes of Section 4: I_R, an
// R*-tree over POIs augmented with keyword supersets/subsets (sup_K /
// sub_K, with hashed bit-vector signatures V_sup) and pivot-distance
// bounds; and I_S, a partition tree over the social network whose nodes
// carry interest-vector MBRs and social/road pivot-distance bounds. Both
// indexes register their nodes with a pagesim.Store so query traversals
// are charged page I/O the way the paper measures it.
package index

import (
	"fmt"
	"math"

	"gpssn/internal/bitvec"
	"gpssn/internal/geo"
	"gpssn/internal/model"
	"gpssn/internal/pagesim"
	"gpssn/internal/roadnet"
	"gpssn/internal/rtree"
	"gpssn/internal/topics"
)

// RoadConfig parameterizes BuildRoad.
type RoadConfig struct {
	// Pivots are the road-network pivot vertices rp_1..rp_h.
	Pivots []roadnet.VertexID
	// RMin and RMax bound the query radius r the index will serve
	// (Section 4.1: sub_K uses r_min, sup_K uses 2·r_max).
	RMin, RMax float64
	// MaxEntries is the R*-tree node capacity (default 16).
	MaxEntries int
	// BitvecWidth is the width of the hashed V_sup signatures (default
	// max(64, 4·topics)).
	BitvecWidth int
	// SamplesPerNode is how many sample POIs each node keeps for the
	// lb_Match_Score of Eq. 18 (default 2).
	SamplesPerNode int
	// PageSize and PoolPages configure the simulated page store (defaults
	// 4096 bytes and 128 pages).
	PageSize, PoolPages int
	// SplitQuadratic switches the R*-tree to quadratic splits (ablation).
	SplitQuadratic bool
}

func (c RoadConfig) withDefaults(topics int) RoadConfig {
	if c.MaxEntries == 0 {
		c.MaxEntries = 16
	}
	if c.BitvecWidth == 0 {
		c.BitvecWidth = 4 * topics
		if c.BitvecWidth < 64 {
			c.BitvecWidth = 64
		}
	}
	if c.SamplesPerNode == 0 {
		c.SamplesPerNode = 2
	}
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.PoolPages == 0 {
		c.PoolPages = 128
	}
	return c
}

// RoadNodeMeta carries the Section 4.1 augmentation of one I_R node.
type RoadNodeMeta struct {
	// Obj is the node's identity in the page store.
	Obj pagesim.ObjectID
	// Sup is the exact keyword superset sup_K over the subtree: the union
	// of member POIs' ⊙(o_i, 2·r_max) keyword unions.
	Sup topics.Set
	// SupVec is the hashed bit-vector signature V_sup of Sup.
	SupVec *bitvec.Vector
	// Sub is a keyword subset sub_K: one member POI's ⊙(o_i, r_min)
	// keyword union (used for lower-bounding achievable match scores).
	Sub topics.Set
	// LbDist and UbDist are the per-pivot distance bounds of Eqs. (7)-(8).
	LbDist, UbDist []float64
	// Samples are member POIs whose Sub sets feed Eq. (18).
	Samples []model.POIID
	// POICount is the number of POIs under the node (pruning-power
	// accounting in the experiments).
	POICount int
}

// RoadIndex is the I_R index.
type RoadIndex struct {
	DS     *model.Dataset
	Tree   *rtree.Tree
	Pivots *roadnet.PivotTable
	Store  *pagesim.Store
	RMin   float64
	RMax   float64

	cfg      RoadConfig
	poiDist  [][]float64      // [poi][pivot] dist_RN(o_i, rp_k)
	poiSup   []topics.Set     // keyword union over ⊙(o_i, 2·r_max) superset
	poiSupV  []*bitvec.Vector // hashed signatures of poiSup
	subRadii []float64        // sub_K radius levels: RMin·2^k up to RMax
	poiSub   [][]topics.Set   // [poi][level] keyword union over ⊙(o_i, subRadii[level])
	meta     map[*rtree.Node]*RoadNodeMeta
}

// BuildRoad constructs I_R over the dataset's POIs.
func BuildRoad(ds *model.Dataset, cfg RoadConfig) (*RoadIndex, error) {
	if len(cfg.Pivots) == 0 {
		return nil, fmt.Errorf("index: road index needs at least one pivot")
	}
	if cfg.RMin <= 0 || cfg.RMax < cfg.RMin {
		return nil, fmt.Errorf("index: need 0 < RMin <= RMax, got [%v, %v]", cfg.RMin, cfg.RMax)
	}
	if len(ds.POIs) == 0 {
		return nil, fmt.Errorf("index: dataset has no POIs")
	}
	c := cfg.withDefaults(ds.NumTopics)

	idx := &RoadIndex{
		DS:    ds,
		RMin:  c.RMin,
		RMax:  c.RMax,
		cfg:   c,
		Store: pagesim.NewStore(c.PageSize, c.PoolPages),
		meta:  map[*rtree.Node]*RoadNodeMeta{},
	}
	idx.Pivots = roadnet.BuildPivotTable(ds.Road, c.Pivots)

	// Bulk-load the R*-tree over POI locations.
	opts := rtree.Options{MaxEntries: c.MaxEntries}
	if c.SplitQuadratic {
		opts.Split = rtree.SplitQuadratic
	}
	idx.Tree = rtree.New(opts)
	items := make([]rtree.Item, len(ds.POIs))
	for i := range ds.POIs {
		items[i] = rtree.Item{Rect: geo.RectFromPoint(ds.POIs[i].Loc), ID: int32(i)}
	}
	idx.Tree.BulkLoad(items)

	idx.buildPOIAggregates()
	idx.buildNodeMeta(idx.Tree.Root())
	idx.placeNodes()
	return idx, nil
}

// buildPOIAggregates computes the per-POI pivot distances and the sup/sub
// keyword sets of Section 4.1. sub_K is kept at several radius levels
// (RMin, 2·RMin, ... up to RMax) so the Eq. 18 feasibility lower bound can
// use the tightest level not exceeding the query radius.
func (ix *RoadIndex) buildPOIAggregates() {
	ds := ix.DS
	n := len(ds.POIs)
	ix.poiDist = make([][]float64, n)
	ix.poiSup = make([]topics.Set, n)
	ix.poiSupV = make([]*bitvec.Vector, n)
	for r := ix.RMin; r <= ix.RMax+1e-9; r *= 2 {
		ix.subRadii = append(ix.subRadii, r)
	}
	ix.poiSub = make([][]topics.Set, n)

	for i := range ds.POIs {
		ix.poiDist[i] = ix.Pivots.AttachDistAll(ds.Road, ds.POIs[i].At)
	}
	for i := range ds.POIs {
		p := &ds.POIs[i]
		// sup_K: a sound superset of ∪ keywords over any ball of radius 2r
		// (r ≤ RMax) containing o_i — every member lies within Euclidean
		// distance 2·RMax of o_i, since road distance dominates Euclidean.
		sup := topics.NewSet(ds.NumTopics)
		cands := ix.euclidBall(p.Loc, 2*ix.RMax)
		for _, j := range cands {
			for _, k := range ds.POIs[j].Keywords {
				sup.Add(k)
			}
		}
		ix.poiSup[i] = sup
		v := bitvec.New(ix.cfg.BitvecWidth)
		for f := 0; f < ds.NumTopics; f++ {
			if sup.Has(f) {
				v.SetKeyword(f)
			}
		}
		ix.poiSupV[i] = v

		// sub_K: keywords of POIs provably within road distance of each
		// radius level — exact membership via one bounded Dijkstra over
		// the Euclidean prefilter (Euclid ≤ road, so the prefilter is a
		// superset).
		maxR := ix.subRadii[len(ix.subRadii)-1]
		pre := ix.euclidBall(p.Loc, maxR)
		atts := make([]roadnet.Attach, len(pre))
		for a, j := range pre {
			atts[a] = ds.POIs[j].At
		}
		dists := ds.Road.DistAttachWithin(p.At, maxR, atts)
		subs := make([]topics.Set, len(ix.subRadii))
		for lv := range subs {
			subs[lv] = topics.NewSet(ds.NumTopics)
		}
		for a, j := range pre {
			if math.IsInf(dists[a], 1) {
				continue
			}
			for lv, r := range ix.subRadii {
				if dists[a] <= r {
					for _, k := range ds.POIs[j].Keywords {
						subs[lv].Add(k)
					}
				}
			}
		}
		ix.poiSub[i] = subs
	}
}

// euclidBall returns the ids of POIs within Euclidean distance radius of p
// (including any POI exactly at p).
func (ix *RoadIndex) euclidBall(p geo.Point, radius float64) []int {
	q := geo.Rect{
		Min: geo.Pt(p.X-radius, p.Y-radius),
		Max: geo.Pt(p.X+radius, p.Y+radius),
	}
	var out []int
	r2 := radius * radius
	ix.Tree.Search(q, func(it rtree.Item) bool {
		if it.Rect.Min.Dist2(p) <= r2 {
			out = append(out, int(it.ID))
		}
		return true
	})
	return out
}

// EuclidBall returns the ids of POIs within Euclidean distance radius of p.
// Because road distance dominates Euclidean distance, the result is a
// superset of any road-network ball of the same radius — the query engine
// uses it as a prefilter before exact bounded-Dijkstra membership tests.
func (ix *RoadIndex) EuclidBall(p geo.Point, radius float64) []model.POIID {
	raw := ix.euclidBall(p, radius)
	out := make([]model.POIID, len(raw))
	for i, id := range raw {
		out[i] = model.POIID(id)
	}
	return out
}

// buildNodeMeta walks the tree bottom-up computing the node augmentation.
func (ix *RoadIndex) buildNodeMeta(n *rtree.Node) *RoadNodeMeta {
	d := ix.DS.NumTopics
	h := ix.Pivots.NumPivots()
	m := &RoadNodeMeta{
		Sup:    topics.NewSet(d),
		SupVec: bitvec.New(ix.cfg.BitvecWidth),
		LbDist: make([]float64, h),
		UbDist: make([]float64, h),
	}
	for k := 0; k < h; k++ {
		m.LbDist[k] = math.Inf(1)
		m.UbDist[k] = math.Inf(-1)
	}
	if n.IsLeaf() {
		for _, e := range n.Entries() {
			id := int(e.ID)
			m.POICount++
			m.Sup.Union(ix.poiSup[id])
			m.SupVec.Or(ix.poiSupV[id])
			for k := 0; k < h; k++ {
				m.LbDist[k] = math.Min(m.LbDist[k], ix.poiDist[id][k])
				m.UbDist[k] = math.Max(m.UbDist[k], ix.poiDist[id][k])
			}
			if len(m.Samples) < ix.cfg.SamplesPerNode {
				m.Samples = append(m.Samples, model.POIID(id))
			}
		}
		if len(m.Samples) > 0 {
			m.Sub = ix.poiSub[m.Samples[0]][0].Clone()
		} else {
			m.Sub = topics.NewSet(d)
		}
	} else {
		for _, e := range n.Entries() {
			cm := ix.buildNodeMeta(e.Child)
			m.POICount += cm.POICount
			m.Sup.Union(cm.Sup)
			m.SupVec.Or(cm.SupVec)
			for k := 0; k < h; k++ {
				m.LbDist[k] = math.Min(m.LbDist[k], cm.LbDist[k])
				m.UbDist[k] = math.Max(m.UbDist[k], cm.UbDist[k])
			}
			for _, s := range cm.Samples {
				if len(m.Samples) < ix.cfg.SamplesPerNode {
					m.Samples = append(m.Samples, s)
				}
			}
		}
		if len(m.Samples) > 0 {
			m.Sub = ix.poiSub[m.Samples[0]][0].Clone()
		} else {
			m.Sub = topics.NewSet(d)
		}
	}
	ix.meta[n] = m
	return m
}

// placeNodes registers each node with the page store in breadth-first
// order. The classic R-tree I/O model applies: one node occupies exactly
// one disk page (node capacity is chosen so a node fits a page), so a node
// access costs one page read on a pool miss.
func (ix *RoadIndex) placeNodes() {
	var next pagesim.ObjectID
	queue := []*rtree.Node{ix.Tree.Root()}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		m := ix.meta[n]
		m.Obj = next
		next++
		if !n.IsLeaf() {
			for _, e := range n.Entries() {
				queue = append(queue, e.Child)
			}
		}
		ix.Store.Place(m.Obj, ix.Store.PageSize())
	}
}

// Meta returns the augmentation of a node. It panics for foreign nodes.
func (ix *RoadIndex) Meta(n *rtree.Node) *RoadNodeMeta {
	m, ok := ix.meta[n]
	if !ok {
		panic("index: node does not belong to this road index")
	}
	return m
}

// Access charges the node's page I/O to the store's shared counters (call
// once per node visit). Not safe for concurrent use; the query engine uses
// AccessTracked instead.
func (ix *RoadIndex) Access(n *rtree.Node) { ix.Store.Access(ix.Meta(n).Obj) }

// AccessTracked charges the node's page I/O to a per-query tracker. Safe
// for concurrent use with distinct trackers once the index is built.
func (ix *RoadIndex) AccessTracked(n *rtree.Node, t *pagesim.Tracker) {
	ix.Store.AccessTracked(ix.Meta(n).Obj, t)
}

// POIDist returns the pivot distance vector of a POI (read-only).
func (ix *RoadIndex) POIDist(id model.POIID) []float64 { return ix.poiDist[id] }

// POISup returns the sup_K keyword superset of a POI.
func (ix *RoadIndex) POISup(id model.POIID) topics.Set { return ix.poiSup[id] }

// POISupVec returns the hashed V_sup signature of a POI.
func (ix *RoadIndex) POISupVec(id model.POIID) *bitvec.Vector { return ix.poiSupV[id] }

// POISub returns the tightest sub_K keyword subset of a POI usable at
// query radius r: the keyword union of the ball ⊙(o_i, r') for the largest
// stored level r' ≤ r. Soundness requires r >= RMin (enforced by query
// parameter validation).
func (ix *RoadIndex) POISub(id model.POIID, r float64) topics.Set {
	lv := 0
	for lv+1 < len(ix.subRadii) && ix.subRadii[lv+1] <= r+1e-12 {
		lv++
	}
	return ix.poiSub[id][lv]
}

// SubRadii returns the stored sub_K radius levels.
func (ix *RoadIndex) SubRadii() []float64 { return ix.subRadii }

// Height returns the number of levels of the underlying tree.
func (ix *RoadIndex) Height() int { return ix.Tree.Height() }
