package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"gpssn"
	"gpssn/internal/bench"
	"gpssn/internal/roadnet"
)

// This file is the `-exp walchurn` benchmark: what durability costs. It
// replays one deterministic road/POI churn burst against four otherwise
// identical DBs — no WAL, and a WAL under each fsync policy (none, batch,
// always) — timing every facade mutation, then kills the sync-always DB
// without Close and times the crash recovery (reopening the log against a
// fresh base). The JSON report (BENCH_wal.json) guards the headlines:
//
//   - the WAL itself is cheap: sync=none sits near the no-WAL floor, the
//     encode+append overhead is microseconds;
//   - group commit works: sync=batch amortizes fsyncs (fsyncs << updates)
//     and lands far below sync=always;
//   - recovery is fast: replaying the whole burst takes milliseconds, not
//     rebuild-the-index seconds.
//
// Like the other facade-driving experiments it lives in package serve
// (internal/bench must not import gpssn); cmd/gpssn-bench registers it.

// WALChurnExperiment returns the "walchurn" experiment for bench.Register.
func WALChurnExperiment() bench.Experiment {
	return bench.Experiment{
		Name:        "walchurn",
		Description: "WAL durability cost: update latency per fsync policy (off/none/batch/always) and crash-recovery time (JSON-capable)",
		Run:         runWALChurn,
	}
}

// walPolicyReport is one fsync regime's slice of BENCH_wal.json.
type walPolicyReport struct {
	Policy      string  `json:"policy"`
	UpdateP50Us float64 `json:"update_p50_us"`
	UpdateP99Us float64 `json:"update_p99_us"`
	Fsyncs      int64   `json:"fsyncs_total"`
	WALBytes    int64   `json:"wal_bytes"`
	// OverheadP50 is this policy's update p50 over the no-WAL run's.
	OverheadP50 float64 `json:"overhead_p50_vs_off"`
}

// walReport is the JSON payload written to RunConfig.JSONOut
// (BENCH_wal.json).
type walReport struct {
	Scale      float64 `json:"scale"`
	Seed       int64   `json:"seed"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Users      int     `json:"users"`
	RoadVerts  int     `json:"road_vertices"`
	Updates    int     `json:"updates_per_run"`

	Policies []walPolicyReport `json:"policies"`

	// Crash recovery: the sync=always DB is abandoned without Close and
	// its log reopened against a fresh base. RecoveryMs is the replay's
	// own cost — the WAL-attached Open minus a WAL-less Open of the same
	// base (the index build, which a checkpoint would skip anyway).
	RecoveredRecords uint64  `json:"recovered_records"`
	RecoveredBytes   int64   `json:"recovered_bytes"`
	BaseOpenMs       float64 `json:"base_open_ms"`
	RecoveryMs       float64 `json:"recovery_ms"`
	// RecoveryUsPerRecord = RecoveryMs*1000 / RecoveredRecords.
	RecoveryUsPerRecord float64 `json:"recovery_us_per_record"`
}

func runWALChurn(w io.Writer, cfg bench.RunConfig) error {
	if cfg.Scale == 0 {
		cfg.Scale = 0.1
	}
	scaled := func(base int) int {
		v := int(math.Round(float64(base) * cfg.Scale))
		if v < 30 {
			v = 30
		}
		return v
	}
	opts := gpssn.SyntheticOptions{
		Name: "walchurn", Seed: cfg.Seed,
		RoadVertices: scaled(30000), Users: scaled(20000), POIs: scaled(10000),
	}
	dir, err := os.MkdirTemp("", "gpssn-walchurn-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// One deterministic burst, replayed identically per regime: stitch a
	// new intersection in, connect it, and drop a POI near it — three
	// logged mutations per round.
	burst := func(d *gpssn.DB, n *gpssn.Network) ([]float64, error) {
		rng := rand.New(rand.NewSource(cfg.Seed + 2))
		nVerts := n.NumIntersections()
		nMut := 2 + nVerts/100
		lat := make([]float64, 0, 3*nMut)
		step := func(f func() error) error {
			t0 := time.Now()
			if err := f(); err != nil {
				return err
			}
			lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e3)
			return nil
		}
		for i := 0; i < nMut; i++ {
			a := rng.Intn(nVerts)
			at := n.Dataset().Road.Vertex(roadnet.VertexID(a))
			var v int
			if err := step(func() (e error) { v, e = d.AddRoadVertex(at.X+0.01, at.Y+0.02); return }); err != nil {
				return nil, err
			}
			if err := step(func() (e error) { _, e = d.AddRoadEdge(a, v); return }); err != nil {
				return nil, err
			}
			if err := step(func() (e error) { _, e = d.AddPOI(at.X+0.02, at.Y+0.01, i%3); return }); err != nil {
				return nil, err
			}
		}
		sort.Float64s(lat)
		return lat, nil
	}
	p := func(s []float64, q float64) float64 {
		if len(s) == 0 {
			return 0
		}
		return s[int(q*float64(len(s)-1))]
	}

	policies := []string{"off", "none", "batch", "always"}
	rpt := walReport{
		Scale: cfg.Scale, Seed: cfg.Seed, GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	var alwaysWAL string
	for _, pol := range policies {
		netw, err := gpssn.GenerateSynthetic(opts)
		if err != nil {
			return err
		}
		dcfg := gpssn.Config{Seed: cfg.Seed}
		if pol != "off" {
			dcfg.WALPath = filepath.Join(dir, pol+".wal")
			dcfg.WALSync = pol
		}
		db, err := gpssn.Open(netw, dcfg)
		if err != nil {
			return err
		}
		rpt.Users, rpt.RoadVerts = netw.NumUsers(), netw.NumIntersections()
		lat, err := burst(db, netw)
		if err != nil {
			return err
		}
		rpt.Updates = len(lat)
		pr := walPolicyReport{
			Policy:      pol,
			UpdateP50Us: p(lat, 0.50),
			UpdateP99Us: p(lat, 0.99),
		}
		if st := db.WALStats(); st.Enabled {
			pr.Fsyncs, pr.WALBytes = st.Fsyncs, st.Bytes
		}
		if base := rpt.Policies; len(base) > 0 && base[0].UpdateP50Us > 0 {
			pr.OverheadP50 = pr.UpdateP50Us / base[0].UpdateP50Us
		}
		rpt.Policies = append(rpt.Policies, pr)
		if pol == "always" {
			// Crash: walk away without Close. The log holds every update.
			alwaysWAL = dcfg.WALPath
		} else {
			if err := db.Close(); err != nil {
				return err
			}
		}
	}

	// Recovery: a fresh base (identical dataset, indexes rebuilt) plus the
	// crashed log. A WAL-less Open of the same base is timed first and
	// subtracted, so RecoveryMs isolates the replay from the index build.
	preNet, err := gpssn.GenerateSynthetic(opts)
	if err != nil {
		return err
	}
	t0 := time.Now()
	if _, err := gpssn.Open(preNet, gpssn.Config{Seed: cfg.Seed}); err != nil {
		return err
	}
	baseMs := float64(time.Since(t0).Microseconds()) / 1000
	recNet, err := gpssn.GenerateSynthetic(opts)
	if err != nil {
		return err
	}
	t0 = time.Now()
	rec, err := gpssn.Open(recNet, gpssn.Config{Seed: cfg.Seed, WALPath: alwaysWAL})
	if err != nil {
		return fmt.Errorf("walchurn: recovery: %w", err)
	}
	openMs := float64(time.Since(t0).Microseconds()) / 1000
	st := rec.WALStats()
	rpt.RecoveredRecords = st.AppliedLSN
	rpt.RecoveredBytes = st.Bytes
	rpt.BaseOpenMs = baseMs
	rpt.RecoveryMs = math.Max(0, openMs-baseMs)
	if st.AppliedLSN > 0 {
		rpt.RecoveryUsPerRecord = rpt.RecoveryMs * 1000 / float64(st.AppliedLSN)
	}
	if err := rec.Close(); err != nil {
		return err
	}

	fmt.Fprintf(w, "# WAL durability cost: %d updates/run over %d road vertices (GOMAXPROCS=%d)\n",
		rpt.Updates, rpt.RoadVerts, rpt.GOMAXPROCS)
	fmt.Fprintf(w, "%-10s %12s %12s %10s %10s %10s\n", "policy", "p50", "p99", "fsyncs", "bytes", "vs off")
	for _, pr := range rpt.Policies {
		ratio := "-"
		if pr.OverheadP50 > 0 {
			ratio = fmt.Sprintf("%.2fx", pr.OverheadP50)
		}
		fmt.Fprintf(w, "%-10s %10.1fµs %10.1fµs %10d %10d %10s\n",
			pr.Policy, pr.UpdateP50Us, pr.UpdateP99Us, pr.Fsyncs, pr.WALBytes, ratio)
	}
	fmt.Fprintf(w, "crash recovery: %d records (%d bytes) replayed in %.1fms (%.1fµs/record; base open %.1fms excluded)\n",
		rpt.RecoveredRecords, rpt.RecoveredBytes, rpt.RecoveryMs, rpt.RecoveryUsPerRecord, rpt.BaseOpenMs)
	fmt.Fprintln(w, "# recovered answers are gated bit-identical to a never-crashed twin by TestWALCrashMatrix")

	if cfg.JSONOut != "" {
		b, err := json.MarshalIndent(rpt, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONOut, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "# JSON report written to %s\n", cfg.JSONOut)
	}
	return nil
}
