package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"gpssn"
)

// maxBodyBytes bounds a request body; a query request is a few hundred
// bytes, so 1 MiB is generous and keeps hostile bodies cheap.
const maxBodyBytes = 1 << 20

// StatusClientClosedRequest is the (nginx-convention) status recorded for
// queries aborted because the issuing client disconnected. It can only
// appear inside a coalesced response shared with surviving waiters, since
// a fully abandoned execution has nobody left to write to.
const StatusClientClosedRequest = 499

// queryRequest is the JSON body of POST /v1/query and /v1/topk. The
// schema (and every default) is documented in docs/SERVING.md.
type queryRequest struct {
	// User is the query issuer's id.
	User int `json:"user"`
	// GroupSize, Gamma, Theta, Radius are the GP-SSN parameters τ, γ, θ, r.
	GroupSize int     `json:"group_size"`
	Gamma     float64 `json:"gamma"`
	Theta     float64 `json:"theta"`
	Radius    float64 `json:"radius"`
	// Metric is "dot" (default), "jaccard" or "hamming".
	Metric string `json:"metric,omitempty"`
	// K is the answer count for /v1/topk (default 1 there; rejected on
	// /v1/query).
	K int `json:"k,omitempty"`
	// TimeoutMs is this request's deadline in milliseconds; 0 inherits the
	// server's default-timeout knob. The effective deadline is always
	// capped by the server's max-timeout knob.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Budget caps the work the query may spend; exceeding it degrades
	// gracefully to a truncated (flagged, never wrong) answer.
	Budget budgetJSON `json:"budget,omitempty"`
}

type budgetJSON struct {
	MaxSettledVertices int64 `json:"max_settled_vertices,omitempty"`
	MaxRefinedAnchors  int   `json:"max_refined_anchors,omitempty"`
}

// parseRequest decodes and shape-checks a query body. Value errors (bad
// user id, non-positive radius, ...) are left to the library's own
// ErrInvalidInput validation so the two layers cannot disagree; only
// JSON-level problems are rejected here.
func parseRequest(w http.ResponseWriter, r *http.Request, topk bool) (*queryRequest, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req queryRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding request body: %v", err)
	}
	if dec.More() {
		return nil, errors.New("request body holds more than one JSON object")
	}
	io.Copy(io.Discard, r.Body)
	switch req.Metric {
	case "", "dot", "jaccard", "hamming":
	default:
		return nil, fmt.Errorf("unknown metric %q (want \"dot\", \"jaccard\" or \"hamming\")", req.Metric)
	}
	if req.TimeoutMs < 0 {
		return nil, fmt.Errorf("timeout_ms %d must be non-negative", req.TimeoutMs)
	}
	if !topk {
		if req.K != 0 {
			return nil, errors.New("field k is only valid on /v1/topk")
		}
	} else {
		if req.K == 0 {
			req.K = 1
		}
		if req.K < 1 {
			return nil, fmt.Errorf("k %d must be >= 1", req.K)
		}
	}
	return &req, nil
}

// query maps the wire request onto the library's Query.
func (r *queryRequest) query() gpssn.Query {
	m := gpssn.DotProduct
	switch r.Metric {
	case "jaccard":
		m = gpssn.Jaccard
	case "hamming":
		m = gpssn.Hamming
	}
	return gpssn.Query{
		GroupSize: r.GroupSize,
		Gamma:     r.Gamma,
		Theta:     r.Theta,
		Radius:    r.Radius,
		Metric:    m,
		Budget: gpssn.Budget{
			MaxSettledVertices: r.Budget.MaxSettledVertices,
			MaxRefinedAnchors:  r.Budget.MaxRefinedAnchors,
		},
	}
}

// flightKey canonicalizes everything that makes two requests "the same
// query" for coalescing: endpoint, issuer, all query parameters, budget,
// k, and the effective timeout. It deliberately mirrors the answer
// cache's key (user, query incl. budget, k) plus the timeout — two
// requests with different deadlines must not share a fate, or a short
// deadline would 504 a patient twin.
func (r *queryRequest) flightKey(topk bool, timeout time.Duration) string {
	ep := "query"
	if topk {
		ep = "topk"
	}
	return fmt.Sprintf("%s|u=%d|tau=%d|g=%v|t=%v|r=%v|m=%s|k=%d|bv=%d|ba=%d|to=%d",
		ep, r.User, r.GroupSize, r.Gamma, r.Theta, r.Radius, r.Metric, r.K,
		r.Budget.MaxSettledVertices, r.Budget.MaxRefinedAnchors, int64(timeout))
}

// errorResponse is the uniform error envelope: a human-readable message
// plus a stable machine-readable code (see the table in docs/SERVING.md).
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// wireAnswer is the JSON shape of one GP-SSN answer.
type wireAnswer struct {
	Users       []int   `json:"users"`
	POIs        []int   `json:"pois"`
	Anchor      int     `json:"anchor"`
	MaxDistance float64 `json:"max_distance"`
	Truncated   bool    `json:"truncated,omitempty"`
}

// wireStats is the JSON shape of per-query cost stats. For a coalesced
// response these are the stats of the one shared execution.
type wireStats struct {
	CPUMicros        int64 `json:"cpu_us"`
	PageReads        int64 `json:"page_reads"`
	CandidateUsers   int   `json:"candidate_users"`
	CandidateAnchors int   `json:"candidate_anchors"`
	CacheHit         bool  `json:"cache_hit,omitempty"`
}

type queryResponse struct {
	Found  bool       `json:"found"`
	Answer wireAnswer `json:"answer"`
	Stats  wireStats  `json:"stats"`
}

type topKResponse struct {
	Answers []wireAnswer `json:"answers"`
	Stats   wireStats    `json:"stats"`
}

func answerJSON(a gpssn.Answer) wireAnswer {
	users, pois := a.Users, a.POIs
	if users == nil {
		users = []int{}
	}
	if pois == nil {
		pois = []int{}
	}
	return wireAnswer{
		Users: users, POIs: pois,
		Anchor: a.Anchor, MaxDistance: a.MaxDistance, Truncated: a.Truncated,
	}
}

func answersJSON(as []gpssn.Answer) []wireAnswer {
	out := make([]wireAnswer, 0, len(as))
	for _, a := range as {
		out = append(out, answerJSON(a))
	}
	return out
}

func statsJSON(st *gpssn.Stats) wireStats {
	if st == nil {
		return wireStats{}
	}
	return wireStats{
		CPUMicros:        st.CPUTime.Microseconds(),
		PageReads:        st.PageReads,
		CandidateUsers:   st.CandidateUsers,
		CandidateAnchors: st.CandidateAnchors,
		CacheHit:         st.CacheHit,
	}
}

func isNoAnswer(err error) bool { return errors.Is(err, gpssn.ErrNoAnswer) }

// statusFor translates the library's typed error contract into HTTP. The
// order matters only for clarity — the sentinels are mutually exclusive
// (every library error matches exactly one; see docs/ROBUSTNESS.md §1).
func statusFor(err error) (status int, code string) {
	switch {
	case errors.Is(err, gpssn.ErrInvalidInput):
		return http.StatusBadRequest, "invalid_input"
	case errors.Is(err, gpssn.ErrNoAnswer):
		return http.StatusNotFound, "no_answer"
	case errors.Is(err, gpssn.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, gpssn.ErrCancelled):
		return StatusClientClosedRequest, "cancelled"
	default:
		// ErrInternal and anything unforeseen: the server's fault.
		return http.StatusInternalServerError, "internal"
	}
}

// renderQueryError renders a library error into shareable bytes.
func renderQueryError(err error) flightResult {
	status, code := statusFor(err)
	msg := err.Error()
	if status == http.StatusInternalServerError {
		// Internal errors carry a stack trace; that belongs in server
		// logs (Config.Logf), not on the wire.
		msg = "internal error answering the query"
	}
	res := renderError(status, code, msg)
	res.executed = true
	return res
}

// renderJSON marshals a response body once, for sharing across every
// coalesced waiter.
func renderJSON(status int, v any) flightResult {
	b, err := json.Marshal(v)
	if err != nil {
		// Marshalling our own value types cannot fail; treat it as internal.
		return renderError(http.StatusInternalServerError, "internal", "encoding response")
	}
	return flightResult{status: status, body: append(b, '\n'), executed: true}
}

func renderError(status int, code, msg string) flightResult {
	b, _ := json.Marshal(errorResponse{Error: msg, Code: code})
	return flightResult{status: status, body: append(b, '\n')}
}
