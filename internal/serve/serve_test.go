package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpssn"
)

// testDB builds the paper's Figure 1 / Table 1 network (the quickstart
// example) into an opened DB: 6 intersections, 4 POIs, 5 users. User 0
// with {group_size:2, gamma:0.5, theta:0.5, radius:1.5} has a feasible
// answer; gamma close to 1 has none.
func testDB(t *testing.T, cfg gpssn.Config) *gpssn.DB {
	t.Helper()
	b := gpssn.NewBuilder(3)
	var v [6]int
	coords := [][2]float64{{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 1}, {2, 1}}
	for i, c := range coords {
		v[i] = b.AddIntersection(c[0], c[1])
	}
	b.AddRoad(v[0], v[1]).AddRoad(v[1], v[2])
	b.AddRoad(v[3], v[4]).AddRoad(v[4], v[5])
	b.AddRoad(v[0], v[3]).AddRoad(v[1], v[4]).AddRoad(v[2], v[5])
	b.AddPOI(0.5, 0, 0)
	b.AddPOI(1.5, 0, 1)
	b.AddPOI(0.5, 1, 2)
	b.AddPOI(1.5, 1, 0, 2)
	interests := [][]float64{
		{0.7, 0.3, 0.7},
		{0.2, 0.9, 0.3},
		{0.4, 0.8, 0.8},
		{0.9, 0.7, 0.7},
		{0.1, 0.8, 0.5},
	}
	homes := [][2]float64{{0.1, 0}, {1.2, 0}, {1.9, 0.5}, {0.3, 1}, {1.7, 1}}
	var u [5]int
	for i := range interests {
		u[i] = b.AddUser(homes[i][0], homes[i][1], interests[i])
	}
	b.AddFriendship(u[0], u[1]).AddFriendship(u[0], u[2]).AddFriendship(u[1], u[2])
	b.AddFriendship(u[2], u[3]).AddFriendship(u[3], u[4])
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RoadPivots == 0 {
		cfg.RoadPivots, cfg.SocialPivots, cfg.LeafSize, cfg.Fanout = 2, 2, 2, 2
	}
	db, err := gpssn.Open(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// feasibleBody is a request user 0 can answer on the test network.
const feasibleBody = `{"user":0,"group_size":2,"gamma":0.5,"theta":0.5,"radius":1.5}`

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func decodeError(t *testing.T, b []byte) errorResponse {
	t.Helper()
	var e errorResponse
	if err := json.Unmarshal(b, &e); err != nil {
		t.Fatalf("decoding error envelope %q: %v", b, err)
	}
	return e
}

// TestErrorMapping drives every typed-error → HTTP status translation
// through the real handler stack, seams standing in for error classes
// that a healthy DB cannot be made to produce on demand.
func TestErrorMapping(t *testing.T) {
	db := testDB(t, gpssn.Config{})
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name       string
		path, body string
		seamErr    error // when set, execQuery returns it
		wantStatus int
		wantCode   string
	}{
		{name: "found", path: "/v1/query", body: feasibleBody, wantStatus: 200},
		{name: "invalid group size", path: "/v1/query",
			body:       `{"user":0,"group_size":0,"gamma":0.5,"theta":0.5,"radius":1.5}`,
			wantStatus: 400, wantCode: "invalid_input"},
		{name: "invalid user", path: "/v1/query",
			body:       `{"user":99,"group_size":2,"gamma":0.5,"theta":0.5,"radius":1.5}`,
			wantStatus: 400, wantCode: "invalid_input"},
		{name: "invalid radius", path: "/v1/query",
			body:       `{"user":0,"group_size":2,"gamma":0.5,"theta":0.5,"radius":-1}`,
			wantStatus: 400, wantCode: "invalid_input"},
		// Rejected by the engine (r outside the index build range), not
		// the facade's own validation — regression: this surfaced as an
		// untyped error and mapped 500 before core.ErrInvalidParams.
		{name: "radius outside index range", path: "/v1/query",
			body:       `{"user":0,"group_size":2,"gamma":0.5,"theta":0.5,"radius":99}`,
			wantStatus: 400, wantCode: "invalid_input"},
		{name: "malformed json", path: "/v1/query", body: `{"user":`,
			wantStatus: 400, wantCode: "invalid_input"},
		{name: "unknown field", path: "/v1/query",
			body:       `{"user":0,"group_size":2,"gamma":0.5,"theta":0.5,"radius":1.5,"bogus":1}`,
			wantStatus: 400, wantCode: "invalid_input"},
		{name: "unknown metric", path: "/v1/query",
			body:       `{"user":0,"group_size":2,"gamma":0.5,"theta":0.5,"radius":1.5,"metric":"cosine"}`,
			wantStatus: 400, wantCode: "invalid_input"},
		{name: "k rejected on query", path: "/v1/query",
			body:       `{"user":0,"group_size":2,"gamma":0.5,"theta":0.5,"radius":1.5,"k":3}`,
			wantStatus: 400, wantCode: "invalid_input"},
		{name: "no answer", path: "/v1/query",
			body:       `{"user":0,"group_size":5,"gamma":100,"theta":0.5,"radius":1.5}`,
			wantStatus: 404, wantCode: "no_answer"},
		{name: "deadline", path: "/v1/query", body: feasibleBody,
			seamErr:    fmt.Errorf("%w: too slow", gpssn.ErrDeadlineExceeded),
			wantStatus: 504, wantCode: "deadline_exceeded"},
		{name: "cancelled", path: "/v1/query", body: feasibleBody,
			seamErr:    fmt.Errorf("%w: gone", gpssn.ErrCancelled),
			wantStatus: StatusClientClosedRequest, wantCode: "cancelled"},
		{name: "internal", path: "/v1/query", body: feasibleBody,
			seamErr:    fmt.Errorf("%w: invariant broke", gpssn.ErrInternal),
			wantStatus: 500, wantCode: "internal"},
		{name: "topk ok", path: "/v1/topk",
			body:       `{"user":0,"group_size":2,"gamma":0.5,"theta":0.5,"radius":1.5,"k":2}`,
			wantStatus: 200},
		{name: "topk empty is 200", path: "/v1/topk",
			body:       `{"user":0,"group_size":5,"gamma":100,"theta":0.5,"radius":1.5}`,
			wantStatus: 200},
		{name: "topk bad k", path: "/v1/topk",
			body:       `{"user":0,"group_size":2,"gamma":0.5,"theta":0.5,"radius":1.5,"k":-1}`,
			wantStatus: 400, wantCode: "invalid_input"},
	}
	realExec := s.execQuery
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s.execQuery = realExec
			if tc.seamErr != nil {
				s.execQuery = func(ctx context.Context, user int, q gpssn.Query) (*gpssn.Answer, *gpssn.Stats, error) {
					return nil, &gpssn.Stats{}, tc.seamErr
				}
			}
			resp, body := post(t, ts, tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d (%s), want %d", resp.StatusCode, body, tc.wantStatus)
			}
			if tc.wantCode != "" {
				if e := decodeError(t, body); e.Code != tc.wantCode {
					t.Fatalf("code = %q (%s), want %q", e.Code, body, tc.wantCode)
				}
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q", ct)
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/query")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/query = %d, want 405", resp.StatusCode)
		}
	})
}

// TestQueryMatchesLibrary asserts the HTTP answer agrees with a direct
// library call, field by field.
func TestQueryMatchesLibrary(t *testing.T) {
	db := testDB(t, gpssn.Config{})
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/v1/query", feasibleBody)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got queryResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want, _, err := db.Query(0, gpssn.Query{GroupSize: 2, Gamma: 0.5, Theta: 0.5, Radius: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Found {
		t.Fatal("found = false")
	}
	if fmt.Sprint(got.Answer.Users) != fmt.Sprint(want.Users) ||
		fmt.Sprint(got.Answer.POIs) != fmt.Sprint(want.POIs) ||
		got.Answer.Anchor != want.Anchor ||
		got.Answer.MaxDistance != want.MaxDistance {
		t.Fatalf("HTTP answer %+v != library answer %+v", got.Answer, want)
	}
}

// TestHealthz covers the ready and draining states.
func TestHealthz(t *testing.T) {
	db := testDB(t, gpssn.Config{})
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || h.Status != "ok" {
		t.Fatalf("healthz = %d %+v, want 200 ok", resp.StatusCode, h)
	}
	if h.OracleActive == "" || h.OracleRequested == "" {
		t.Fatalf("healthz lacks oracle fields: %+v", h)
	}

	s.BeginDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
}

// TestSingleflight proves the coalescing contract under -race: N identical
// concurrent requests perform exactly one engine execution, and every
// client receives byte-identical responses; the N-1 followers are marked
// with the X-Gpssn-Coalesced header.
func TestSingleflight(t *testing.T) {
	// Answer cache off: the single execution must come from coalescing,
	// not from a cache hit.
	db := testDB(t, gpssn.Config{CacheSize: 0})
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 16
	var executions atomic.Int64
	gate := make(chan struct{})
	real := s.execQuery
	s.execQuery = func(ctx context.Context, user int, q gpssn.Query) (*gpssn.Answer, *gpssn.Stats, error) {
		executions.Add(1)
		<-gate // hold the execution until every request has joined
		return real(ctx, user, q)
	}

	req := &queryRequest{User: 0, GroupSize: 2, Gamma: 0.5, Theta: 0.5, Radius: 1.5}
	key := req.flightKey(false, 0)

	type outcome struct {
		status    int
		body      []byte
		coalesced bool
	}
	results := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(feasibleBody))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			results[i] = outcome{resp.StatusCode, b, resp.Header.Get("X-Gpssn-Coalesced") == "1"}
		}(i)
	}

	// Open the gate only once all n requests are blocked on the one call.
	deadline := time.Now().Add(10 * time.Second)
	for s.fl.pending(key) != n {
		if time.Now().After(deadline) {
			close(gate)
			t.Fatalf("only %d/%d requests joined the flight", s.fl.pending(key), n)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("engine executions = %d, want 1", got)
	}
	coalesced := 0
	for i, r := range results {
		if r.status != 200 {
			t.Fatalf("request %d: status %d: %s", i, r.status, r.body)
		}
		if !bytes.Equal(r.body, results[0].body) {
			t.Fatalf("request %d body differs:\n%s\nvs\n%s", i, r.body, results[0].body)
		}
		if r.coalesced {
			coalesced++
		}
	}
	if coalesced != n-1 {
		t.Fatalf("coalesced followers = %d, want %d", coalesced, n-1)
	}
	if got := s.met.Coalesced.Load(); got != n-1 {
		t.Fatalf("metrics coalesced = %d, want %d", got, n-1)
	}
	if got := s.met.Executed.Load(); got != 1 {
		t.Fatalf("metrics executed = %d, want 1", got)
	}
}

// TestAdmissionControl saturates a MaxInFlight=1 server with a blocked
// execution and asserts a different query is shed with 429 + Retry-After,
// then served normally once the slot frees up.
func TestAdmissionControl(t *testing.T) {
	db := testDB(t, gpssn.Config{})
	s := New(db, Config{MaxInFlight: 1, RetryAfter: 7 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	gate := make(chan struct{})
	real := s.execQuery
	started := make(chan struct{}, 1)
	s.execQuery = func(ctx context.Context, user int, q gpssn.Query) (*gpssn.Answer, *gpssn.Stats, error) {
		started <- struct{}{}
		<-gate
		return real(ctx, user, q)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, body := post(t, ts, "/v1/query", feasibleBody)
		if resp.StatusCode != 200 {
			t.Errorf("blocked query finished %d: %s", resp.StatusCode, body)
		}
	}()
	<-started // the slot is now held

	// A different user's query cannot coalesce and must be shed.
	other := `{"user":3,"group_size":2,"gamma":0.5,"theta":0.5,"radius":1.5}`
	resp, body := post(t, ts, "/v1/query", other)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Code != "overloaded" {
		t.Fatalf("code = %q, want overloaded", e.Code)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want 7", ra)
	}
	if s.met.Shed.Load() == 0 {
		t.Fatal("shed metric not incremented")
	}

	close(gate)
	wg.Wait()
	resp, body = post(t, ts, "/v1/query", other)
	if resp.StatusCode != 200 {
		t.Fatalf("post-release status = %d (%s), want 200", resp.StatusCode, body)
	}
}

// TestDrain checks the graceful-shutdown contract: in-flight requests run
// to completion, new ones are rejected 503, and Drain returns only once
// the last in-flight request finished.
func TestDrain(t *testing.T) {
	db := testDB(t, gpssn.Config{})
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	gate := make(chan struct{})
	real := s.execQuery
	started := make(chan struct{}, 1)
	s.execQuery = func(ctx context.Context, user int, q gpssn.Query) (*gpssn.Answer, *gpssn.Stats, error) {
		started <- struct{}{}
		<-gate
		return real(ctx, user, q)
	}

	slowDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(feasibleBody))
		if err != nil {
			slowDone <- 0
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		slowDone <- resp.StatusCode
	}()
	<-started

	s.BeginDrain()
	resp, body := post(t, ts, "/v1/query", feasibleBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status = %d (%s), want 503", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Code != "draining" {
		t.Fatalf("code = %q, want draining", e.Code)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	select {
	case <-drained:
		t.Fatal("Drain returned while a request was still in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	if status := <-slowDone; status != 200 {
		t.Fatalf("in-flight request during drain finished %d, want 200", status)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestEffectiveTimeout pins the default/max timeout resolution matrix.
func TestEffectiveTimeout(t *testing.T) {
	db := testDB(t, gpssn.Config{})
	cases := []struct {
		def, max time.Duration
		reqMs    int64
		want     time.Duration
	}{
		{0, 0, 0, 0},
		{0, 0, 250, 250 * time.Millisecond},
		{2 * time.Second, 0, 0, 2 * time.Second},
		{2 * time.Second, 0, 250, 250 * time.Millisecond},
		{0, time.Second, 0, time.Second},
		{0, time.Second, 5000, time.Second},
		{2 * time.Second, time.Second, 0, time.Second},
		{time.Second, 2 * time.Second, 0, time.Second},
	}
	for _, tc := range cases {
		s := New(db, Config{DefaultTimeout: tc.def, MaxTimeout: tc.max})
		if got := s.effectiveTimeout(tc.reqMs); got != tc.want {
			t.Errorf("effectiveTimeout(def=%v max=%v req=%dms) = %v, want %v",
				tc.def, tc.max, tc.reqMs, got, tc.want)
		}
	}
}

// TestRequestTimeoutMaps504 drives a real slow execution into the mapped
// 504 through a request-level timeout_ms.
func TestRequestTimeoutMaps504(t *testing.T) {
	db := testDB(t, gpssn.Config{})
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	real := s.execQuery
	s.execQuery = func(ctx context.Context, user int, q gpssn.Query) (*gpssn.Answer, *gpssn.Stats, error) {
		select {
		case <-ctx.Done():
		case <-time.After(10 * time.Second):
		}
		return real(ctx, user, q)
	}
	resp, body := post(t, ts, "/v1/query",
		`{"user":0,"group_size":2,"gamma":0.5,"theta":0.5,"radius":1.5,"timeout_ms":30}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Code != "deadline_exceeded" {
		t.Fatalf("code = %q, want deadline_exceeded", e.Code)
	}
}

// TestStatszRoadOverlay checks that /statsz surfaces the road
// delta-overlay while it is active and drops the block once Compact has
// re-contracted the oracle.
func TestStatszRoadOverlay(t *testing.T) {
	db := testDB(t, gpssn.Config{})
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	statsz := func() map[string]json.RawMessage {
		t.Helper()
		resp, err := http.Get(ts.URL + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("/statsz status %d err %v", resp.StatusCode, err)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("decoding /statsz: %v", err)
		}
		return m
	}

	if m := statsz(); m["road_overlay"] != nil {
		t.Fatalf("static oracle should surface no road_overlay block: %s", m["road_overlay"])
	}

	v, err := db.AddRoadVertex(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddRoadEdge(0, v); err != nil {
		t.Fatal(err)
	}
	m := statsz()
	if m["road_overlay"] == nil {
		t.Fatal("/statsz missing road_overlay after a road mutation")
	}
	var ov roadOverlayJSON
	if err := json.Unmarshal(m["road_overlay"], &ov); err != nil {
		t.Fatalf("decoding road_overlay block: %v", err)
	}
	if ov.BaseVertices != 6 || ov.NewVertices != 1 || ov.NewEdges != 1 || ov.Portals < 2 {
		t.Fatalf("road_overlay counters off: %+v", ov)
	}

	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if m := statsz(); m["road_overlay"] != nil {
		t.Fatalf("Compact should retire the road_overlay block: %s", m["road_overlay"])
	}
}

// TestStatszWAL checks that /statsz surfaces the write-ahead-log block
// exactly when a WAL is attached, and that its counters move with update
// traffic and reset at a checkpoint.
func TestStatszWAL(t *testing.T) {
	dir := t.TempDir()
	var cfg gpssn.Config
	cfg.WALPath = filepath.Join(dir, "serve.wal")
	db := testDB(t, cfg)
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	statsz := func() map[string]json.RawMessage {
		t.Helper()
		resp, err := http.Get(ts.URL + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("/statsz status %d err %v", resp.StatusCode, err)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("decoding /statsz: %v", err)
		}
		return m
	}

	m := statsz()
	if m["wal"] == nil {
		t.Fatal("/statsz missing wal block with a WAL attached")
	}
	var w walJSON
	if err := json.Unmarshal(m["wal"], &w); err != nil {
		t.Fatalf("decoding wal block: %v", err)
	}
	if w.Path != cfg.WALPath || w.Sync != "always" || w.Pending != 0 {
		t.Fatalf("fresh wal block off: %+v", w)
	}

	if _, err := db.AddPOI(0.5, 0.5, 1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(statsz()["wal"], &w); err != nil {
		t.Fatal(err)
	}
	if w.Pending != 1 || w.LastLSN != 1 || w.AppliedLSN != 1 || w.Appends != 1 || w.Fsyncs < 1 {
		t.Fatalf("wal block after one update off: %+v", w)
	}

	if err := db.Checkpoint(filepath.Join(dir, "serve.ckpt")); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(statsz()["wal"], &w); err != nil {
		t.Fatal(err)
	}
	if w.Pending != 0 || w.StartLSN != 2 {
		t.Fatalf("wal block after checkpoint off: %+v", w)
	}

	// No WAL attached: the block must be absent.
	db2 := testDB(t, gpssn.Config{})
	s2 := New(db2, Config{})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var m2 map[string]json.RawMessage
	if err := json.Unmarshal(body, &m2); err != nil {
		t.Fatal(err)
	}
	if m2["wal"] != nil {
		t.Fatalf("WAL-less DB should surface no wal block: %s", m2["wal"])
	}
}
