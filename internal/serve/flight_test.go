package serve

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestFlightCoalesces exercises the flight directly: concurrent do() calls
// with one key run fn once and share the result; a different key runs
// separately.
func TestFlightCoalesces(t *testing.T) {
	f := newFlight()
	var mu sync.Mutex
	runs := map[string]int{}
	gate := make(chan struct{})
	fn := func(key string) func(context.Context) flightResult {
		return func(context.Context) flightResult {
			mu.Lock()
			runs[key]++
			mu.Unlock()
			<-gate
			return flightResult{status: 200, body: []byte(key)}
		}
	}

	const n = 8
	var wg sync.WaitGroup
	type res struct {
		r         flightResult
		coalesced bool
	}
	got := make([]res, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		key := "a"
		if i == n-1 {
			key = "b"
		}
		go func(i int, key string) {
			defer wg.Done()
			r, coalesced, ok := f.do(key, context.Background(), 0, fn(key))
			if !ok {
				t.Errorf("do(%q) not ok", key)
			}
			got[i] = res{r, coalesced}
		}(i, key)
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.pending("a") != n-1 || f.pending("b") != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters: a=%d b=%d", f.pending("a"), f.pending("b"))
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if runs["a"] != 1 || runs["b"] != 1 {
		t.Fatalf("runs = %v, want a:1 b:1", runs)
	}
	coalesced := 0
	for i, r := range got[:n-1] {
		if string(r.r.body) != "a" {
			t.Fatalf("result %d = %q, want a", i, r.r.body)
		}
		if r.coalesced {
			coalesced++
		}
	}
	if coalesced != n-2 {
		t.Fatalf("coalesced = %d, want %d", coalesced, n-2)
	}
	if f.pending("a") != 0 || f.pending("b") != 0 {
		t.Fatal("calls not cleaned up")
	}
}

// TestFlightCancelsAbandonedExecution checks the refcounted cancellation:
// when every waiter of a call goes away, the shared execution's context is
// cancelled so the engine stops doing work nobody wants — and a later
// identical request starts a fresh execution instead of joining the dying
// one.
func TestFlightCancelsAbandonedExecution(t *testing.T) {
	f := newFlight()
	execCancelled := make(chan struct{})
	running := make(chan struct{})
	fn := func(ctx context.Context) flightResult {
		close(running)
		<-ctx.Done()
		close(execCancelled)
		return flightResult{status: StatusClientClosedRequest}
	}

	waiter, cancelWaiter := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		_, _, ok := f.do("k", waiter, 0, fn)
		if ok {
			t.Error("abandoned do() reported ok")
		}
		close(done)
	}()
	<-running
	cancelWaiter() // the only client disconnects
	<-done

	select {
	case <-execCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("execution context was not cancelled after the last waiter left")
	}

	// The key must be free for a fresh execution immediately.
	r, coalesced, ok := f.do("k", context.Background(), 0, func(context.Context) flightResult {
		return flightResult{status: http.StatusOK, body: []byte("fresh")}
	})
	if !ok || coalesced || string(r.body) != "fresh" {
		t.Fatalf("fresh call after abandonment: ok=%v coalesced=%v body=%q", ok, coalesced, r.body)
	}
}

// TestFlightTimeoutReachesExecution verifies the timeout is carried by the
// execution context handed to fn.
func TestFlightTimeoutReachesExecution(t *testing.T) {
	f := newFlight()
	r, _, ok := f.do("k", context.Background(), 10*time.Millisecond, func(ctx context.Context) flightResult {
		select {
		case <-ctx.Done():
			return flightResult{status: http.StatusGatewayTimeout}
		case <-time.After(10 * time.Second):
			return flightResult{status: http.StatusOK}
		}
	})
	if !ok || r.status != http.StatusGatewayTimeout {
		t.Fatalf("ok=%v status=%d, want timed-out execution", ok, r.status)
	}
}
