package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gpssn"
)

// TestGathererFoldsConcurrentHolds: requests arriving within one window
// are released together as a single batch, and the counters record it.
func TestGathererFoldsConcurrentHolds(t *testing.T) {
	g := newGatherer(30 * time.Millisecond)
	const callers = 8
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.hold(context.Background())
		}()
	}
	wg.Wait()
	if held := time.Since(start); held < 20*time.Millisecond {
		t.Fatalf("batch released after %s, want ~30ms window", held)
	}
	if got := g.batches.Load(); got != 1 {
		t.Fatalf("batches = %d, want 1 (all callers in one window)", got)
	}
	if got := g.batched.Load(); got != callers {
		t.Fatalf("batched requests = %d, want %d", got, callers)
	}
	if got := g.maxBatch.Load(); got != callers {
		t.Fatalf("max batch = %d, want %d", got, callers)
	}

	// The next arrival opens a fresh window — batches keep counting.
	g.hold(context.Background())
	if got := g.batches.Load(); got != 2 {
		t.Fatalf("batches after second window = %d, want 2", got)
	}
}

// TestGathererZeroWindowIsNoOp: the library default (no gather window)
// must not delay or count anything, and a nil gatherer is safe.
func TestGathererZeroWindowIsNoOp(t *testing.T) {
	g := newGatherer(0)
	start := time.Now()
	g.hold(context.Background())
	if held := time.Since(start); held > 5*time.Millisecond {
		t.Fatalf("zero-window hold blocked for %s", held)
	}
	if g.batches.Load() != 0 || g.batched.Load() != 0 {
		t.Fatal("zero-window gatherer recorded batches")
	}
	var nilG *gatherer
	nilG.hold(context.Background()) // must not panic
}

// TestGathererReleasesAbandoningClient: a caller whose context fires
// mid-window leaves immediately instead of waiting out the batch.
func TestGathererReleasesAbandoningClient(t *testing.T) {
	g := newGatherer(time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		g.hold(ctx)
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("cancelled hold did not return")
	}
}

// TestStatszSharedWork drives identical queries through a server with the
// gather window enabled and checks the /statsz additions of this layer:
// the shared_work block with nonzero memo traffic, the gather counters,
// and the flight snapshot fields.
func TestStatszSharedWork(t *testing.T) {
	db := testDB(t, gpssn.Config{})
	srv := New(db, Config{GatherWindow: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		resp, _ := post(t, ts, "/v1/query", feasibleBody)
		if resp.StatusCode != 200 {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("/statsz status %d", resp.StatusCode)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("decoding /statsz: %v", err)
	}
	for _, field := range []string{
		"flight_in_flight_keys", "flight_waiters", "flight_max_waiters_one_key",
		"gather_window_ms", "gather_batches_total", "gather_batched_requests_total",
		"gather_max_batch", "shared_work",
	} {
		if _, ok := m[field]; !ok {
			t.Errorf("/statsz missing %q: %s", field, body)
		}
	}

	var sw struct {
		RoadVersion int64   `json:"road_version"`
		BallHits    int64   `json:"ball_hits_total"`
		BallMisses  int64   `json:"ball_misses_total"`
		SweepHits   int64   `json:"sweep_hits_total"`
		SweepMisses int64   `json:"sweep_misses_total"`
		HitRate     float64 `json:"hit_rate"`
	}
	if err := json.Unmarshal(m["shared_work"], &sw); err != nil {
		t.Fatalf("decoding shared_work block: %v", err)
	}
	if sw.BallMisses+sw.SweepMisses == 0 {
		t.Fatalf("shared_work shows no memo traffic: %s", m["shared_work"])
	}

	var mem struct {
		OracleBytes int64  `json:"oracle_bytes"`
		ArenaBytes  int64  `json:"arena_bytes"`
		HeapAlloc   uint64 `json:"heap_alloc_bytes"`
	}
	if err := json.Unmarshal(m["memory"], &mem); err != nil {
		t.Fatalf("decoding memory block: %v", err)
	}
	// The test server runs with the default hl oracle and has answered
	// real queries, so both the label store and the heap must be nonzero.
	if mem.OracleBytes <= 0 {
		t.Errorf("memory.oracle_bytes = %d, want > 0: %s", mem.OracleBytes, m["memory"])
	}
	if mem.HeapAlloc == 0 {
		t.Errorf("memory.heap_alloc_bytes = 0: %s", m["memory"])
	}

	// Identical requests coalesce in flight before reaching the engine, so
	// memo hits need the cache-busting spread below: distinct users whose
	// probes still share anchors.
	for _, body := range []string{
		`{"user":0,"group_size":2,"gamma":0.5,"theta":0.5,"radius":1.5}`,
		`{"user":1,"group_size":2,"gamma":0.5,"theta":0.5,"radius":1.5}`,
		`{"user":2,"group_size":2,"gamma":0.5,"theta":0.5,"radius":1.5}`,
	} {
		post(t, ts, "/v1/query", body)
	}
	st := db.SharedWorkStats()
	if !st.Enabled {
		t.Fatal("DB opened by the server has the memo disabled")
	}
	if st.BallHits+st.SweepHits == 0 {
		t.Fatalf("no shared-work hits after overlapping queries: %+v", st)
	}
}

// TestFlightSnapshot checks the live coalescing-depth readout: a blocked
// leader with joined waiters shows up in keys/waiters/maxWaiters, and a
// drained flight reads back as empty.
func TestFlightSnapshot(t *testing.T) {
	f := newFlight()
	block := make(chan struct{})
	leaderIn := make(chan struct{})
	exec := func(context.Context) flightResult {
		close(leaderIn)
		<-block
		return flightResult{status: 200}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.do("k", context.Background(), 0, exec)
	}()
	<-leaderIn
	const joiners = 3
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.do("k", context.Background(), 0, func(context.Context) flightResult {
				return flightResult{status: 200}
			})
		}()
	}
	// Wait for the joiners to register on the key.
	deadline := time.Now().Add(time.Second)
	for f.pending("k") < joiners+1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	keys, waiters, maxW := f.snapshot()
	if keys != 1 {
		t.Fatalf("in-flight keys = %d, want 1", keys)
	}
	if waiters != joiners+1 {
		t.Fatalf("waiters = %d, want %d", waiters, joiners+1)
	}
	if maxW != joiners+1 {
		t.Fatalf("max waiters on one key = %d, want %d", maxW, joiners+1)
	}
	close(block)
	wg.Wait()
	if keys, waiters, _ := f.snapshot(); keys != 0 || waiters != 0 {
		t.Fatalf("drained flight reports keys=%d waiters=%d, want 0/0", keys, waiters)
	}
}
