package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"gpssn"
	"gpssn/internal/bench"
	"gpssn/internal/roadnet"
)

// This file is the `-exp churn` benchmark: query latency under road write
// traffic. It opens a facade DB with the default hub-label oracle, then
// measures the same query workload in four regimes — against the static
// oracle, against the delta-overlay after a burst of AddRoadVertex /
// AddRoadEdge churn, concurrently with the background Compact
// re-contraction, and after the swap — plus a Dijkstra-backend reference
// run that pins what the old detach-the-oracle behaviour used to cost.
// The headline claims the JSON report (BENCH_churn.json) guards:
//
//   - churn keeps queries oracle-class: overlay p50 sits near the static
//     p50, nowhere near the Dijkstra cliff;
//   - Compact no longer stops the world: queries keep completing while
//     the rebuild runs, and the swap is not visible as an error;
//   - road mutations are cheap: no O(V+E) edge-grid rebuilds (the
//     incremental insert), microsecond-scale update latency.
//
// Like the serve load generator above, it lives in package serve because
// it drives the public gpssn facade, which internal/bench must not import;
// cmd/gpssn-bench registers it via bench.Register.

// ChurnExperiment returns the "churn" experiment for bench.Register.
func ChurnExperiment() bench.Experiment {
	return bench.Experiment{
		Name:        "churn",
		Description: "Road churn: query latency static vs delta-overlay vs during-Compact vs post-swap, Dijkstra cliff reference, update costs (JSON-capable)",
		Run:         runChurn,
	}
}

// churnReport is the JSON payload written to RunConfig.JSONOut
// (BENCH_churn.json).
type churnReport struct {
	Scale        float64 `json:"scale"`
	Seed         int64   `json:"seed"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Users        int     `json:"users"`
	RoadVertices int     `json:"road_vertices"`
	POIs         int     `json:"pois"`
	QueriesPhase int     `json:"queries_per_phase"`

	// Query latency per regime, same issuer/shape schedule each time.
	StaticP50Ms  float64 `json:"static_p50_ms"`
	StaticP99Ms  float64 `json:"static_p99_ms"`
	OverlayP50Ms float64 `json:"overlay_p50_ms"`
	OverlayP99Ms float64 `json:"overlay_p99_ms"`
	CompactP50Ms float64 `json:"during_compact_p50_ms"`
	PostP50Ms    float64 `json:"post_compact_p50_ms"`
	PostP99Ms    float64 `json:"post_compact_p99_ms"`

	// The cliff this PR removes: the same overlay-phase workload on a
	// DB opened with DistanceOracle=dijkstra (what every query paid
	// after any road write when mutation detached the oracle).
	DijkstraP50Ms float64 `json:"dijkstra_p50_ms"`
	// OverlaySlowdown = overlay p50 / static p50 (oracle-class ≈ 1-3x);
	// CliffRatio = dijkstra p50 / overlay p50 (how much of the old
	// penalty the overlay removes).
	OverlaySlowdown float64 `json:"overlay_slowdown"`
	CliffRatio      float64 `json:"dijkstra_cliff_ratio"`

	// Road-write costs.
	EdgesAdded      int     `json:"edges_added"`
	VertsAdded      int     `json:"verts_added"`
	UpdateP50Us     float64 `json:"update_p50_us"`
	UpdateP99Us     float64 `json:"update_p99_us"`
	GridBuildsChurn int     `json:"grid_rebuilds_during_churn"`

	// Background re-contraction.
	CompactMs            float64 `json:"compact_ms"`
	QueriesDuringCompact int64   `json:"queries_during_compact"`
	ErrorsDuringCompact  int64   `json:"errors_during_compact"`

	Overlay gpssn.RoadOverlayStats `json:"overlay_stats"`
}

func runChurn(w io.Writer, cfg bench.RunConfig) error {
	if cfg.Scale == 0 {
		cfg.Scale = 0.1
	}
	perPhase := 64
	if cfg.Queries > 8 {
		perPhase = cfg.Queries
	}
	scaled := func(base int) int {
		v := int(math.Round(float64(base) * cfg.Scale))
		if v < 30 {
			v = 30
		}
		return v
	}
	opts := gpssn.SyntheticOptions{
		Name: "churn", Seed: cfg.Seed,
		RoadVertices: scaled(30000), Users: scaled(20000), POIs: scaled(10000),
	}
	netw, err := gpssn.GenerateSynthetic(opts)
	if err != nil {
		return err
	}
	// Cache off: this experiment measures query work, not cache hits.
	db, err := gpssn.Open(netw, gpssn.Config{Seed: cfg.Seed})
	if err != nil {
		return err
	}
	users := netw.NumUsers()
	nVerts := netw.NumIntersections()

	// The fixed query schedule every regime replays: zipf-popular issuers
	// over a small shape mix, seeded identically each phase.
	type qitem struct {
		user int
		q    gpssn.Query
	}
	shapes := []gpssn.Query{
		{GroupSize: 5, Gamma: 0.5, Theta: 0.5, Radius: 2},
		{GroupSize: 3, Gamma: 0.5, Theta: 0.5, Radius: 1},
		{GroupSize: 5, Gamma: 0.3, Theta: 0.5, Radius: 2},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	zipf := rand.NewZipf(rng, 1.3, 8, uint64(users-1))
	schedule := make([]qitem, perPhase)
	for i := range schedule {
		schedule[i] = qitem{user: int(zipf.Uint64()), q: shapes[i%len(shapes)]}
	}
	runPhase := func(d *gpssn.DB) []float64 {
		lat := make([]float64, 0, len(schedule))
		for _, it := range schedule {
			t0 := time.Now()
			_, _, err := d.Query(it.user, it.q)
			if err != nil && !errors.Is(err, gpssn.ErrNoAnswer) {
				return lat // surfaced through zero-length percentiles
			}
			lat = append(lat, float64(time.Since(t0).Microseconds())/1000)
		}
		sort.Float64s(lat)
		return lat
	}

	fmt.Fprintf(w, "# Road churn: %d queries/phase over %d users, %d road vertices (GOMAXPROCS=%d)\n",
		perPhase, users, nVerts, runtime.GOMAXPROCS(0))

	// Phase 1 — static oracle, the pre-churn floor.
	static := runPhase(db)

	// Churn burst: stitch new intersections in and shortcut existing
	// ones, timing each facade mutation. The same deterministic burst is
	// replayed against the reference DB below.
	var updates []float64
	edges, verts := 0, 0
	churnBurst := func(d *gpssn.DB, n *gpssn.Network, record bool) error {
		churnRng := rand.New(rand.NewSource(cfg.Seed + 2))
		nMut := 2 + nVerts/100
		for i := 0; i < nMut; i++ {
			a := churnRng.Intn(nVerts)
			at := n.Dataset().Road.Vertex(roadnet.VertexID(a))
			t0 := time.Now()
			v, err := d.AddRoadVertex(at.X+0.01, at.Y+0.02)
			if err != nil {
				return err
			}
			if _, err := d.AddRoadEdge(a, v); err != nil {
				return err
			}
			if record {
				updates = append(updates, float64(time.Since(t0).Microseconds()))
				verts++
				edges++
			}
		}
		return nil
	}
	gridBefore := netw.Dataset().Road.GridBuilds()
	if err := churnBurst(db, netw, true); err != nil {
		return err
	}
	sort.Float64s(updates)
	gridBuilds := netw.Dataset().Road.GridBuilds() - gridBefore

	// Phase 2 — the delta-overlay answers the same schedule.
	overlay := runPhase(db)
	ovStats := db.RoadOverlayStats()

	// Dijkstra reference: the cliff the overlay removes — the same churn
	// burst applied to a DB with no oracle, i.e. the world where a road
	// mutation detaches the oracle and every dist_RN evaluation pays a
	// plain heap search. A separate DB over an identical dataset (Open
	// attaches oracles to the network, so the nets must be distinct).
	refNet, err := gpssn.GenerateSynthetic(opts)
	if err != nil {
		return err
	}
	refDB, err := gpssn.Open(refNet, gpssn.Config{Seed: cfg.Seed, DistanceOracle: "dijkstra"})
	if err != nil {
		return err
	}
	if err := churnBurst(refDB, refNet, false); err != nil {
		return err
	}
	dijkstra := runPhase(refDB)

	// Phase 3 — queries racing the background re-contraction.
	var during []float64
	var duringN, duringErr atomic.Int64
	compactDone := make(chan error, 1)
	t0 := time.Now()
	go func() { compactDone <- db.Compact() }()
	var compactErr error
	i := 0
loop:
	for {
		select {
		case compactErr = <-compactDone:
			break loop
		default:
		}
		it := schedule[i%len(schedule)]
		i++
		q0 := time.Now()
		if _, _, err := db.Query(it.user, it.q); err != nil && !errors.Is(err, gpssn.ErrNoAnswer) {
			duringErr.Add(1)
		} else {
			during = append(during, float64(time.Since(q0).Microseconds())/1000)
		}
		duringN.Add(1)
	}
	compactMs := float64(time.Since(t0).Microseconds()) / 1000
	if compactErr != nil {
		return fmt.Errorf("churn: Compact: %w", compactErr)
	}
	sort.Float64s(during)

	// Phase 4 — the freshly contracted world.
	post := runPhase(db)

	p := func(s []float64, q float64) float64 {
		if len(s) == 0 {
			return 0
		}
		return s[int(q*float64(len(s)-1))]
	}
	rpt := churnReport{
		Scale: cfg.Scale, Seed: cfg.Seed, GOMAXPROCS: runtime.GOMAXPROCS(0),
		Users: users, RoadVertices: nVerts, POIs: netw.NumPOIs(),
		QueriesPhase: perPhase,
		StaticP50Ms:  p(static, 0.50), StaticP99Ms: p(static, 0.99),
		OverlayP50Ms: p(overlay, 0.50), OverlayP99Ms: p(overlay, 0.99),
		CompactP50Ms: p(during, 0.50),
		PostP50Ms:    p(post, 0.50), PostP99Ms: p(post, 0.99),
		DijkstraP50Ms:        p(dijkstra, 0.50),
		EdgesAdded:           edges,
		VertsAdded:           verts,
		UpdateP50Us:          p(updates, 0.50),
		UpdateP99Us:          p(updates, 0.99),
		GridBuildsChurn:      gridBuilds,
		CompactMs:            compactMs,
		QueriesDuringCompact: duringN.Load(),
		ErrorsDuringCompact:  duringErr.Load(),
		Overlay:              ovStats,
	}
	if rpt.StaticP50Ms > 0 {
		rpt.OverlaySlowdown = rpt.OverlayP50Ms / rpt.StaticP50Ms
	}
	if rpt.OverlayP50Ms > 0 {
		rpt.CliffRatio = rpt.DijkstraP50Ms / rpt.OverlayP50Ms
	}

	fmt.Fprintf(w, "churn burst: +%d vertices, +%d edges (update p50 %.0fµs p99 %.0fµs, %d grid rebuilds)\n",
		verts, edges, rpt.UpdateP50Us, rpt.UpdateP99Us, gridBuilds)
	fmt.Fprintf(w, "overlay: %d portals over base %d, %d composed queries\n",
		ovStats.Portals, ovStats.BaseN, ovStats.Queries)
	fmt.Fprintf(w, "%-26s %10s %10s\n", "regime", "p50", "p99")
	fmt.Fprintf(w, "%-26s %8.2fms %8.2fms\n", "static oracle", rpt.StaticP50Ms, rpt.StaticP99Ms)
	fmt.Fprintf(w, "%-26s %8.2fms %8.2fms\n", "delta-overlay (churned)", rpt.OverlayP50Ms, rpt.OverlayP99Ms)
	fmt.Fprintf(w, "%-26s %8.2fms\n", "during background Compact", rpt.CompactP50Ms)
	fmt.Fprintf(w, "%-26s %8.2fms %8.2fms\n", "post-Compact", rpt.PostP50Ms, rpt.PostP99Ms)
	fmt.Fprintf(w, "%-26s %8.2fms   (the removed cliff)\n", "dijkstra reference", rpt.DijkstraP50Ms)
	fmt.Fprintf(w, "overlay slowdown %.2fx vs static; dijkstra cliff %.1fx vs overlay\n",
		rpt.OverlaySlowdown, rpt.CliffRatio)
	fmt.Fprintf(w, "Compact ran %.0fms in the background; %d queries completed meanwhile, %d errors\n",
		rpt.CompactMs, rpt.QueriesDuringCompact, rpt.ErrorsDuringCompact)
	fmt.Fprintln(w, "# all four regimes answer exactly (equality gates: TestRoadChurnEqualityGates)")

	if cfg.JSONOut != "" {
		b, err := json.MarshalIndent(rpt, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONOut, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "# JSON report written to %s\n", cfg.JSONOut)
	}
	return nil
}
