package serve

import "sync/atomic"

// metrics is the server's atomic counter set, exposed as JSON by GET
// /statsz (see docs/SERVING.md for the meaning and intended use of each
// counter). All fields are monotonic except InFlight, a gauge.
type metrics struct {
	// Requests counts every query-endpoint request accepted for parsing
	// (health and stats probes are not counted).
	Requests atomic.Int64
	// Executed counts engine executions: requests that actually ran
	// Query/QueryTopK rather than joining an in-flight twin or being
	// rejected. The coalescing win is Coalesced/(Executed+Coalesced).
	Executed atomic.Int64
	// Coalesced counts requests answered by joining another request's
	// in-flight execution (they performed no engine work).
	Coalesced atomic.Int64
	// CacheHits counts executions answered from the answer cache.
	CacheHits atomic.Int64
	// Shed counts requests rejected 429 by admission control.
	Shed atomic.Int64
	// DrainRejected counts requests rejected 503 while draining.
	DrainRejected atomic.Int64
	// Found / NoAnswer split completed single-answer queries by outcome.
	Found, NoAnswer atomic.Int64
	// ClientGone counts requests whose client disconnected before their
	// (possibly shared) execution completed; nothing was written.
	ClientGone atomic.Int64
	// Errors counts responses with status >= 400 other than 404/429/503
	// rejections counted above: invalid input, timeouts, internal errors.
	Errors atomic.Int64
	// InFlight is the number of admission slots currently held.
	InFlight atomic.Int64
}

// metricsSnapshot is the JSON shape of GET /statsz (assembled by
// Server.snapshot, which also feeds the loadgen's server_statsz capture).
type metricsSnapshot struct {
	UptimeMs      int64 `json:"uptime_ms"`
	Requests      int64 `json:"requests_total"`
	Executed      int64 `json:"executed_total"`
	Coalesced     int64 `json:"coalesced_total"`
	CacheHits     int64 `json:"cache_hits_total"`
	Shed          int64 `json:"shed_total"`
	DrainRejected int64 `json:"drain_rejected_total"`
	Found         int64 `json:"found_total"`
	NoAnswer      int64 `json:"no_answer_total"`
	ClientGone    int64 `json:"client_gone_total"`
	Errors        int64 `json:"errors_total"`
	InFlight      int64 `json:"in_flight"`
	MaxInFlight   int   `json:"max_in_flight"`
	Draining      bool  `json:"draining"`

	// Live coalescing depth (the flight map at snapshot time).
	FlightKeys       int `json:"flight_in_flight_keys"`
	FlightWaiters    int `json:"flight_waiters"`
	FlightMaxWaiters int `json:"flight_max_waiters_one_key"`

	// Gather-window tallies (zero when Config.GatherWindow is off).
	GatherWindowMs float64 `json:"gather_window_ms"`
	GatherBatches  int64   `json:"gather_batches_total"`
	GatherBatched  int64   `json:"gather_batched_requests_total"`
	GatherMaxBatch int64   `json:"gather_max_batch"`

	// Engine shared-work memo counters; omitted when the layer is
	// disabled (Config.DisableSharedWork at the facade).
	SharedWork *sharedWorkJSON `json:"shared_work,omitempty"`

	// Road delta-overlay state; omitted while the oracle is static (no
	// road mutation since Open or the last Compact).
	RoadOverlay *roadOverlayJSON `json:"road_overlay,omitempty"`

	// True while a background Compact re-contraction is in flight.
	Rebuilding bool `json:"rebuilding,omitempty"`

	// Write-ahead-log state; omitted when the DB runs without a WAL.
	WAL *walJSON `json:"wal,omitempty"`

	// Memory accounting: engine-owned structures plus the Go heap.
	// Always present.
	Memory *memoryJSON `json:"memory,omitempty"`
}

// memoryJSON mirrors gpssn.MemoryStats for /statsz: where the process's
// memory actually lives. oracle_bytes is the capacity-planning headline
// (the preprocessed label store dominates at scale); arena_bytes and
// memo_bytes are the engine's recycled scratch; the heap fields are the
// runtime's own view for cross-checking against RSS.
type memoryJSON struct {
	OracleBytes int64  `json:"oracle_bytes"`
	ArenaBytes  int64  `json:"arena_bytes"`
	MemoBytes   int64  `json:"memo_bytes"`
	HeapAlloc   uint64 `json:"heap_alloc_bytes"`
	HeapSys     uint64 `json:"heap_sys_bytes"`
	NumGC       uint32 `json:"gc_cycles_total"`
}

// roadOverlayJSON mirrors gpssn.RoadOverlayStats for /statsz: how far the
// road network has grown past the static oracle and how big the portal
// patch has become — the number an operator watches to schedule Compact
// under sustained write traffic.
type roadOverlayJSON struct {
	BaseVertices int   `json:"base_vertices"`
	NewVertices  int   `json:"new_vertices"`
	NewEdges     int   `json:"new_edges"`
	Portals      int   `json:"portals"`
	Queries      int64 `json:"composed_queries_total"`
}

// walJSON mirrors gpssn.WALStats for /statsz: durability state under write
// traffic. pending_records is the operator's headline — how many updates a
// crash right now would force recovery to replay; it drops to zero at every
// checkpoint. fsyncs_total versus appends_total shows the group-commit
// batching win under -wal-sync batch.
type walJSON struct {
	Path             string `json:"path"`
	Sync             string `json:"sync"`
	StartLSN         uint64 `json:"start_lsn"`
	LastLSN          uint64 `json:"last_lsn"`
	AppliedLSN       uint64 `json:"applied_lsn"`
	Pending          int64  `json:"pending_records"`
	Bytes            int64  `json:"bytes"`
	Appends          int64  `json:"appends_total"`
	Fsyncs           int64  `json:"fsyncs_total"`
	TornBytesDropped int64  `json:"torn_bytes_dropped"`
}

// sharedWorkJSON mirrors gpssn.SharedWorkStats for /statsz. HitRate is
// the combined ball+sweep memo hit rate — the headline number the
// bench-serve before/after comparison gates on.
type sharedWorkJSON struct {
	RoadVersion   uint64  `json:"road_version"`
	BallHits      int64   `json:"ball_hits_total"`
	BallMisses    int64   `json:"ball_misses_total"`
	BallEvictions int64   `json:"ball_evictions_total"`
	BallEntries   int     `json:"ball_entries"`
	SweepHits     int64   `json:"sweep_hits_total"`
	SweepMisses   int64   `json:"sweep_misses_total"`
	SweepRejected int64   `json:"sweep_rejected_total"`
	SweepEntries  int     `json:"sweep_entries"`
	SweepBytes    int64   `json:"sweep_bytes"`
	HitRate       float64 `json:"hit_rate"`
}
