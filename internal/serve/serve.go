// Package serve implements the HTTP/JSON query-serving layer behind
// cmd/gpssn-serve: a production front end over a gpssn.DB that adds what
// the library deliberately leaves to the caller — request admission,
// load shedding, per-request deadlines, request coalescing, and a
// drain-based shutdown — while translating the library's typed error
// contract (gpssn.ErrInvalidInput, ErrNoAnswer, ErrCancelled,
// ErrDeadlineExceeded, ErrInternal) into HTTP status codes.
//
// The serving pipeline for POST /v1/query and /v1/topk is, in order:
//
//  1. drain gate — a draining server rejects new work with 503 so an
//     orchestrator can stop routing to it (GET /healthz also flips);
//  2. admission control — at most Config.MaxInFlight executions run at
//     once; beyond that requests are shed with 429 and a Retry-After
//     hint instead of queueing without bound;
//  3. coalescing — identical in-flight requests (same issuer, query
//     parameters, budget, k and timeout) share one engine execution and
//     receive byte-identical responses (the flight type);
//  4. execution — DB.QueryCtx/QueryTopKCtx under a context carrying the
//     effective per-request deadline, with Query.Budget mapped straight
//     through.
//
// Every endpoint, knob, and status code is documented for operators in
// docs/SERVING.md; the concurrency and robustness contracts the server
// builds on are docs/CONCURRENCY.md and docs/ROBUSTNESS.md.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gpssn"
)

// Config tunes a Server. The zero value serves with the defaults noted on
// each field; see docs/SERVING.md for tuning guidance.
type Config struct {
	// MaxInFlight bounds concurrently executing queries (admission
	// control). Requests beyond the bound are shed with 429 + Retry-After
	// rather than queued. Default 128.
	MaxInFlight int
	// DefaultTimeout applies to requests that carry no timeout_ms field.
	// 0 means no default deadline.
	DefaultTimeout time.Duration
	// MaxTimeout caps every request's effective deadline, including
	// requests that asked for no deadline at all. 0 means no cap.
	MaxTimeout time.Duration
	// RetryAfter is the hint sent with 429 responses. Default 1s.
	RetryAfter time.Duration
	// GatherWindow holds each parsed query request up to this long so
	// that overlapping requests enter the engine together and fold into
	// one shared ball/sweep construction pass (docs/SERVING.md §4a).
	// 0 (the default) disables the hold; gpssn-serve enables ~1ms via
	// its -gather-window flag. Costs up to one window of added latency
	// per request — keep it well under typical engine latency.
	GatherWindow time.Duration
	// Logf, when set, receives one diagnostic line per lifecycle event
	// (drain begin/end) and per internal error. nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 128
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Server serves GP-SSN queries over HTTP/JSON. Build one with New, mount
// Handler on an http.Server, and call Drain before exiting. Safe for
// concurrent use by any number of connections.
type Server struct {
	db    *gpssn.DB
	cfg   Config
	mux    *http.ServeMux
	slots  chan struct{}
	fl     *flight
	gather *gatherer
	met    metrics
	start  time.Time

	draining atomic.Bool
	wg       sync.WaitGroup // in-flight query-endpoint requests

	// Execution seams: tests swap these to count or gate engine
	// executions; production always goes straight to the DB.
	execQuery func(ctx context.Context, user int, q gpssn.Query) (*gpssn.Answer, *gpssn.Stats, error)
	execTopK  func(ctx context.Context, user int, q gpssn.Query, k int) ([]gpssn.Answer, *gpssn.Stats, error)
}

// New builds a Server over an opened DB.
func New(db *gpssn.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		db:     db,
		cfg:    cfg,
		mux:    http.NewServeMux(),
		slots:  make(chan struct{}, cfg.MaxInFlight),
		fl:     newFlight(),
		gather: newGatherer(cfg.GatherWindow),
		start:  time.Now(),
	}
	s.execQuery = db.QueryCtx
	s.execTopK = db.QueryTopKCtx
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) { s.handleQueryEndpoint(w, r, false) })
	s.mux.HandleFunc("/v1/topk", func(w http.ResponseWriter, r *http.Request) { s.handleQueryEndpoint(w, r, true) })
	return s
}

// Handler returns the http.Handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain flips the server into draining mode: /healthz turns 503 and
// new query requests are rejected with 503 code "draining", while
// requests already executing run to completion. Idempotent.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) {
		s.cfg.logf("serve: draining: rejecting new requests")
	}
}

// Drain begins draining and blocks until every in-flight query request
// has completed, or until ctx fires (returning its error with requests
// still running). Call it on SIGTERM before shutting the http.Server down.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cfg.logf("serve: drain complete")
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// acquire claims an admission slot without blocking; false means the
// server is saturated and the request must be shed.
func (s *Server) acquire() bool {
	select {
	case s.slots <- struct{}{}:
		s.met.InFlight.Add(1)
		return true
	default:
		return false
	}
}

func (s *Server) release() {
	<-s.slots
	s.met.InFlight.Add(-1)
}

// healthzResponse is the JSON shape of GET /healthz.
type healthzResponse struct {
	Status          string   `json:"status"` // "ok" or "draining"
	OracleRequested string   `json:"oracle_requested"`
	OracleActive    string   `json:"oracle_active"`
	Degraded        bool     `json:"degraded"`
	Notes           []string `json:"notes,omitempty"`
	UptimeMs        int64    `json:"uptime_ms"`
}

// handleHealthz reports liveness + readiness. 200 means "route traffic
// here" — including degraded-oracle serving, which is exact, just slower
// (the degraded flag and notes surface it for monitoring). 503 means the
// server is draining and should be rotated out.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	h := s.db.Health()
	resp := healthzResponse{
		Status:          "ok",
		OracleRequested: h.OracleRequested,
		OracleActive:    h.OracleActive,
		Degraded:        h.Degraded,
		Notes:           h.Notes,
		UptimeMs:        time.Since(s.start).Milliseconds(),
	}
	status := http.StatusOK
	if s.Draining() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	writeJSON(w, http.StatusOK, s.snapshot())
}

// snapshot assembles the full /statsz payload: the server's own atomic
// counters, the live coalescing depth, the gather-window tallies, and the
// engine's shared-work memo counters. The loadgen captures the same
// struct into BENCH_serve.json, so the two always agree field for field.
func (s *Server) snapshot() metricsSnapshot {
	m := &s.met
	flKeys, flWaiters, flMax := s.fl.snapshot()
	snap := metricsSnapshot{
		UptimeMs:         time.Since(s.start).Milliseconds(),
		Requests:         m.Requests.Load(),
		Executed:         m.Executed.Load(),
		Coalesced:        m.Coalesced.Load(),
		CacheHits:        m.CacheHits.Load(),
		Shed:             m.Shed.Load(),
		DrainRejected:    m.DrainRejected.Load(),
		Found:            m.Found.Load(),
		NoAnswer:         m.NoAnswer.Load(),
		ClientGone:       m.ClientGone.Load(),
		Errors:           m.Errors.Load(),
		InFlight:         m.InFlight.Load(),
		MaxInFlight:      s.cfg.MaxInFlight,
		Draining:         s.Draining(),
		FlightKeys:       flKeys,
		FlightWaiters:    flWaiters,
		FlightMaxWaiters: flMax,
		GatherWindowMs:   float64(s.cfg.GatherWindow) / float64(time.Millisecond),
		GatherBatches:    s.gather.batches.Load(),
		GatherBatched:    s.gather.batched.Load(),
		GatherMaxBatch:   s.gather.maxBatch.Load(),
	}
	if sw := s.db.SharedWorkStats(); sw.Enabled {
		j := sharedWorkJSON{
			RoadVersion:   sw.RoadVersion,
			BallHits:      sw.BallHits,
			BallMisses:    sw.BallMisses,
			BallEvictions: sw.BallEvictions,
			BallEntries:   sw.BallEntries,
			SweepHits:     sw.SweepHits,
			SweepMisses:   sw.SweepMisses,
			SweepRejected: sw.SweepRejected,
			SweepEntries:  sw.SweepEntries,
			SweepBytes:    sw.SweepBytes,
		}
		if n := j.BallHits + j.BallMisses + j.SweepHits + j.SweepMisses; n > 0 {
			j.HitRate = float64(j.BallHits+j.SweepHits) / float64(n)
		}
		snap.SharedWork = &j
	}
	if ov := s.db.RoadOverlayStats(); ov.Active {
		snap.RoadOverlay = &roadOverlayJSON{
			BaseVertices: ov.BaseN,
			NewVertices:  ov.NewVerts,
			NewEdges:     ov.NewEdges,
			Portals:      ov.Portals,
			Queries:      ov.Queries,
		}
	}
	snap.Rebuilding = s.db.Health().Rebuilding
	if ws := s.db.WALStats(); ws.Enabled {
		snap.WAL = &walJSON{
			Path:             ws.Path,
			Sync:             ws.Sync,
			StartLSN:         ws.StartLSN,
			LastLSN:          ws.LastLSN,
			AppliedLSN:       ws.AppliedLSN,
			Pending:          ws.Pending,
			Bytes:            ws.Bytes,
			Appends:          ws.Appends,
			Fsyncs:           ws.Fsyncs,
			TornBytesDropped: ws.TornBytesDropped,
		}
	}
	ms := s.db.MemoryStats()
	snap.Memory = &memoryJSON{
		OracleBytes: ms.OracleBytes,
		ArenaBytes:  ms.ArenaBytes,
		MemoBytes:   ms.MemoBytes,
		HeapAlloc:   ms.HeapAlloc,
		HeapSys:     ms.HeapSys,
		NumGC:       ms.NumGC,
	}
	return snap
}

// handleQueryEndpoint is the shared pipeline of /v1/query and /v1/topk:
// drain gate, parse, coalesce, (admit + execute), respond.
func (s *Server) handleQueryEndpoint(w http.ResponseWriter, r *http.Request, topk bool) {
	s.met.Requests.Add(1)
	// The wg.Add must precede the drain re-check: either this request
	// observes draining and bails, or Drain observes the Add and waits.
	s.wg.Add(1)
	defer s.wg.Done()
	if s.Draining() {
		s.met.DrainRejected.Add(1)
		w.Header().Set("Connection", "close")
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining; retry against another replica")
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST with a JSON body")
		return
	}
	req, err := parseRequest(w, r, topk)
	if err != nil {
		s.met.Errors.Add(1)
		writeError(w, http.StatusBadRequest, "invalid_input", err.Error())
		return
	}
	timeout := s.effectiveTimeout(req.TimeoutMs)

	// Gather window: hold parsed requests briefly so overlapping queries
	// enter the engine together and fold their ball/sweep builds through
	// the shared-work memo. No-op unless Config.GatherWindow is set.
	s.gather.hold(r.Context())

	res, coalesced, ok := s.fl.do(req.flightKey(topk, timeout), r.Context(), timeout,
		func(ctx context.Context) flightResult {
			return s.execute(ctx, req, topk)
		})
	if !ok {
		// The client went away before its (possibly shared) execution
		// finished; there is no one to write to.
		s.met.ClientGone.Add(1)
		return
	}
	if coalesced {
		s.met.Coalesced.Add(1)
		w.Header().Set("X-Gpssn-Coalesced", "1")
	}
	switch {
	case res.status == http.StatusTooManyRequests:
		s.met.Shed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter + time.Second - 1) / time.Second)))
	case res.status >= 400 && res.status != http.StatusNotFound:
		s.met.Errors.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// effectiveTimeout resolves a request's timeout_ms against the server's
// DefaultTimeout and MaxTimeout knobs.
func (s *Server) effectiveTimeout(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (d <= 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	return d
}

// execute is the leader-side body of one coalesced call: admission, the
// engine call, and rendering the shared response bytes.
func (s *Server) execute(ctx context.Context, req *queryRequest, topk bool) flightResult {
	if !s.acquire() {
		return renderError(http.StatusTooManyRequests, "overloaded",
			fmt.Sprintf("server at its in-flight limit (%d); retry later", s.cfg.MaxInFlight))
	}
	defer s.release()
	s.met.Executed.Add(1)

	q := req.query()
	if topk {
		answers, st, err := s.execTopK(ctx, req.User, q, req.K)
		if err != nil {
			s.logInternal(err)
			return renderQueryError(err)
		}
		if st != nil && st.CacheHit {
			s.met.CacheHits.Add(1)
		}
		return renderJSON(http.StatusOK, topKResponse{
			Answers: answersJSON(answers),
			Stats:   statsJSON(st),
		})
	}
	ans, st, err := s.execQuery(ctx, req.User, q)
	if st != nil && st.CacheHit {
		s.met.CacheHits.Add(1)
	}
	if err != nil {
		if isNoAnswer(err) {
			s.met.NoAnswer.Add(1)
		}
		s.logInternal(err)
		return renderQueryError(err)
	}
	s.met.Found.Add(1)
	return renderJSON(http.StatusOK, queryResponse{
		Found:  true,
		Answer: answerJSON(*ans),
		Stats:  statsJSON(st),
	})
}

// logInternal records internal errors — the one error class whose detail
// (stack trace, query context) is kept off the wire — to the log sink.
func (s *Server) logInternal(err error) {
	if errors.Is(err, gpssn.ErrInternal) {
		s.cfg.logf("serve: internal error: %v", err)
	}
}

// writeJSON writes v as the whole response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// writeError writes the uniform error envelope.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorResponse{Error: msg, Code: code})
}
