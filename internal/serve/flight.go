package serve

import (
	"context"
	"sync"
	"time"
)

// flightResult is the fully rendered outcome of one coalesced execution:
// the HTTP status plus the exact response bytes. Sharing rendered bytes —
// not Answer structs — guarantees every waiter of a coalesced call
// receives a byte-identical response, which is what the serve_test.go
// singleflight gate asserts.
type flightResult struct {
	status   int
	body     []byte
	executed bool // the engine actually ran (false for shed/panic paths)
}

// call is one in-flight coalesced execution. waiters counts the requests
// currently blocked on done; when the last one abandons (client gone), the
// execution context is cancelled so the engine aborts work nobody wants.
type call struct {
	done    chan struct{}
	res     flightResult
	waiters int // guarded by flight.mu
	cancel  context.CancelFunc
}

// flight is the request-coalescing (singleflight) layer in front of the
// answer cache: concurrent requests that map to the same key share one
// execution and receive identical bytes. Unlike the classic singleflight,
// the shared execution runs under its own context, detached from any one
// request: it is cancelled only when every waiter has gone away, so a
// single impatient client cannot fail the queries of the others, and a
// popular query keeps running (and lands in the answer cache) as long as
// anyone still wants it.
type flight struct {
	mu    sync.Mutex
	calls map[string]*call
}

func newFlight() *flight {
	return &flight{calls: map[string]*call{}}
}

// do coalesces executions of fn by key. The first caller for a key becomes
// the leader: fn runs once in its own goroutine under a fresh context
// carrying timeout (0 = none). Every caller — leader included — blocks
// until the shared execution completes or its own waiterCtx is done.
//
// Returns the shared result, whether this caller joined an execution
// started by an earlier request (coalesced), and whether the result is
// valid (false when waiterCtx fired first; the caller's client is gone and
// nothing useful can be written).
func (f *flight) do(key string, waiterCtx context.Context, timeout time.Duration,
	fn func(ctx context.Context) flightResult) (res flightResult, coalesced, ok bool) {

	f.mu.Lock()
	if c, exists := f.calls[key]; exists {
		c.waiters++
		f.mu.Unlock()
		return f.wait(key, c, waiterCtx, true)
	}

	execCtx, cancel := context.WithCancel(context.Background())
	if timeout > 0 {
		execCtx, cancel = context.WithTimeout(context.Background(), timeout)
	}
	c := &call{done: make(chan struct{}), waiters: 1, cancel: cancel}
	f.calls[key] = c
	f.mu.Unlock()

	go func() {
		res := fn(execCtx)
		f.mu.Lock()
		c.res = res
		if f.calls[key] == c {
			delete(f.calls, key)
		}
		f.mu.Unlock()
		close(c.done)
		cancel()
	}()
	return f.wait(key, c, waiterCtx, false)
}

// wait blocks on the shared call until it completes or the waiter's own
// context fires. An abandoning waiter decrements the refcount; the last
// one out cancels the execution and unlinks the call so a later identical
// request starts fresh instead of joining a dying one.
func (f *flight) wait(key string, c *call, waiterCtx context.Context, coalesced bool) (flightResult, bool, bool) {
	select {
	case <-c.done:
		return c.res, coalesced, true
	case <-waiterCtx.Done():
		f.mu.Lock()
		c.waiters--
		if c.waiters == 0 {
			c.cancel()
			if f.calls[key] == c {
				delete(f.calls, key)
			}
		}
		f.mu.Unlock()
		return flightResult{}, coalesced, false
	}
}

// snapshot reports the live coalescing depth for /statsz: the number of
// keys with an execution in flight, the total waiters blocked on them,
// and the largest waiter count on any single key.
func (f *flight) snapshot() (keys, waiters, maxWaiters int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.calls {
		keys++
		waiters += c.waiters
		if c.waiters > maxWaiters {
			maxWaiters = c.waiters
		}
	}
	return keys, waiters, maxWaiters
}

// pending reports the number of waiters currently blocked on key's call
// (0 when no call is in flight). Tests use it to deterministically gate an
// execution until every concurrent request has joined.
func (f *flight) pending(key string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.calls[key]; ok {
		return c.waiters
	}
	return 0
}
