package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gpssn"
	"gpssn/internal/bench"
)

// This file is the `-exp serve` load generator: it stands up a real
// gpssn-serve pipeline (Server + net/http over TCP loopback) on a
// generated dataset and drives it with a large population of concurrent
// clients issuing a zipf-skewed query mix — the bursty, highly
// overlapping workload the ROADMAP's group-planning scenario predicts —
// then reports client-observed latency percentiles, throughput, shed
// rate, and the coalescing/caching win. With RunConfig.JSONOut set the
// numbers are also written as JSON (the committed BENCH_serve.json).
//
// It lives in package serve rather than internal/bench because it drives
// the public gpssn facade, which internal/bench must not import (the root
// package's own tests import internal/bench); cmd/gpssn-bench registers
// it via bench.Register.

// LoadExperiment returns the "serve" experiment for bench.Register.
func LoadExperiment() bench.Experiment {
	return bench.Experiment{
		Name:        "serve",
		Description: "Serving: concurrent zipf-skewed clients vs gpssn-serve (p50/p99, throughput, shed + coalesce rates, JSON-capable)",
		Run:         runServeLoad,
	}
}

// serveReport is the JSON payload written to RunConfig.JSONOut
// (BENCH_serve.json).
type serveReport struct {
	Scale        float64 `json:"scale"`
	Seed         int64   `json:"seed"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Users        int     `json:"users"`
	RoadVertices int     `json:"road_vertices"`
	POIs         int     `json:"pois"`

	Clients     int     `json:"clients"`
	Requests    int     `json:"requests_total"` // logical queries (tickets)
	Attempts    int64   `json:"attempts_total"` // HTTP requests incl. shed retries
	MaxInFlight int     `json:"max_in_flight"`
	DurationMs  float64 `json:"duration_ms"`

	ThroughputRPS float64 `json:"throughput_rps"` // completed answers (200/404) per second
	P50Ms         float64 `json:"latency_p50_ms"` // over completed answers, incl. retry backoff
	P90Ms         float64 `json:"latency_p90_ms"`
	P99Ms         float64 `json:"latency_p99_ms"`

	ShedRate     float64 `json:"shed_rate"`         // 429s / HTTP attempts
	CoalesceRate float64 `json:"coalesce_hit_rate"` // coalesced / HTTP attempts
	CacheHitRate float64 `json:"cache_hit_rate"`    // answer-cache hits / executions
	FoundRate    float64 `json:"found_rate"`        // found / completed answers

	StatusCounts map[string]int64 `json:"status_counts"`
	Server       metricsSnapshot  `json:"server_statsz"`
}

// loadShape is one query shape of the mix; weights skew the draw so a few
// shapes dominate, the way production query traffic repeats itself.
type loadShape struct {
	body   func(user int) string
	weight int
}

func runServeLoad(w io.Writer, cfg bench.RunConfig) error {
	if cfg.Scale == 0 {
		cfg.Scale = 0.1
	}
	const (
		clients  = 1000
		requests = 8000
	)
	maxInFlight := 8 * runtime.GOMAXPROCS(0)

	// Dataset: the paper's UNI sizes at cfg.Scale, served the way
	// production would — answer cache on, hl oracle.
	scaled := func(base int) int {
		v := int(math.Round(float64(base) * cfg.Scale))
		if v < 20 {
			v = 20
		}
		return v
	}
	netw, err := gpssn.GenerateSynthetic(gpssn.SyntheticOptions{
		Name: "serve-load", Seed: cfg.Seed,
		RoadVertices: scaled(30000), Users: scaled(30000), POIs: scaled(10000),
	})
	if err != nil {
		return err
	}
	db, err := gpssn.Open(netw, gpssn.Config{CacheSize: 4096, Parallelism: 1})
	if err != nil {
		return err
	}
	users := netw.NumUsers()

	srv := New(db, Config{MaxInFlight: maxInFlight, MaxTimeout: 30 * time.Second})
	httpSrv := &http.Server{Handler: srv.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	url := "http://" + ln.Addr().String() + "/v1/query"

	// The query mix: four shapes, heavily weighted toward one default
	// shape, over zipf-popular issuers — maximal overlap, like a city's
	// worth of users planning around the same hotspots.
	shape := func(tau int, gamma, theta, r float64) func(int) string {
		return func(user int) string {
			return fmt.Sprintf(`{"user":%d,"group_size":%d,"gamma":%g,"theta":%g,"radius":%g}`,
				user, tau, gamma, theta, r)
		}
	}
	shapes := []loadShape{
		{shape(5, 0.5, 0.5, 2), 8},
		{shape(3, 0.5, 0.5, 1), 4},
		{shape(5, 0.3, 0.5, 2), 2},
		{shape(7, 0.5, 0.7, 3), 1},
	}
	var weighted []int
	for i, s := range shapes {
		for j := 0; j < s.weight; j++ {
			weighted = append(weighted, i)
		}
	}

	transport := &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
	}
	client := &http.Client{Transport: transport}

	var (
		next      atomic.Int64 // global ticket: one per logical query
		attempts  atomic.Int64 // HTTP requests, including shed retries
		mu        sync.Mutex
		latencies []float64 // ms, first attempt → final answer
		statuses  = map[string]int64{}
		found     int64
	)
	record := func(status int, ms float64, f bool) {
		mu.Lock()
		defer mu.Unlock()
		statuses[fmt.Sprint(status)]++
		if status == http.StatusOK || status == http.StatusNotFound {
			latencies = append(latencies, ms)
			if f {
				found++
			}
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			// Zipf over issuers: a few hotspot users dominate.
			zipf := rand.NewZipf(rng, 1.3, 8, uint64(users-1))
			for {
				if next.Add(1) > requests {
					return
				}
				user := int(zipf.Uint64())
				body := shapes[weighted[rng.Intn(len(weighted))]].body(user)
				t0 := time.Now()
				// One logical query: a shed (429) is retried with jittered
				// exponential backoff, the well-behaved-client protocol
				// docs/SERVING.md prescribes; latency is first-attempt to
				// final answer.
				backoff := 4 * time.Millisecond
				for {
					attempts.Add(1)
					resp, err := client.Post(url, "application/json", bytes.NewReader([]byte(body)))
					if err != nil {
						record(0, 0, false)
						break
					}
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusTooManyRequests {
						mu.Lock()
						statuses["429"]++
						mu.Unlock()
						time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff))))
						if backoff < 512*time.Millisecond {
							backoff *= 2
						}
						continue
					}
					f := false
					if resp.StatusCode == http.StatusOK {
						var qr queryResponse
						if json.Unmarshal(b, &qr) == nil {
							f = qr.Found
						}
					}
					record(resp.StatusCode, float64(time.Since(t0).Microseconds())/1000, f)
					break
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	m := &srv.met
	snap := metricsSnapshot{
		Requests:  m.Requests.Load(),
		Executed:  m.Executed.Load(),
		Coalesced: m.Coalesced.Load(),
		CacheHits: m.CacheHits.Load(),
		Shed:      m.Shed.Load(),
		Found:     m.Found.Load(),
		NoAnswer:  m.NoAnswer.Load(),
		Errors:      m.Errors.Load(),
		UptimeMs:    elapsed.Milliseconds(),
		MaxInFlight: maxInFlight,
	}

	sort.Float64s(latencies)
	rpt := serveReport{
		Scale: cfg.Scale, Seed: cfg.Seed, GOMAXPROCS: runtime.GOMAXPROCS(0),
		Users: users, RoadVertices: netw.NumIntersections(), POIs: netw.NumPOIs(),
		Clients: clients, Requests: requests, Attempts: attempts.Load(), MaxInFlight: maxInFlight,
		DurationMs:    float64(elapsed.Microseconds()) / 1000,
		ThroughputRPS: float64(len(latencies)) / elapsed.Seconds(),
		P50Ms:         percentile(latencies, 0.50),
		P90Ms:         percentile(latencies, 0.90),
		P99Ms:         percentile(latencies, 0.99),
		ShedRate:      rate(snap.Shed, attempts.Load()),
		CoalesceRate:  rate(snap.Coalesced, attempts.Load()),
		CacheHitRate:  rate(snap.CacheHits, snap.Executed),
		FoundRate:     rate(found, int64(len(latencies))),
		StatusCounts:  statuses,
		Server:        snap,
	}

	fmt.Fprintf(w, "# Serving: %d clients, %d queries (%d HTTP attempts), zipf-skewed mix, max-inflight %d (GOMAXPROCS=%d)\n",
		clients, requests, rpt.Attempts, maxInFlight, rpt.GOMAXPROCS)
	fmt.Fprintf(w, "dataset: UNI scale %.2f (%d users, %d road vertices, %d POIs)\n",
		cfg.Scale, rpt.Users, rpt.RoadVertices, rpt.POIs)
	fmt.Fprintf(w, "%-22s %12s\n", "metric", "value")
	fmt.Fprintf(w, "%-22s %11.0f/s\n", "throughput (answers)", rpt.ThroughputRPS)
	fmt.Fprintf(w, "%-22s %10.2fms\n", "latency p50", rpt.P50Ms)
	fmt.Fprintf(w, "%-22s %10.2fms\n", "latency p90", rpt.P90Ms)
	fmt.Fprintf(w, "%-22s %10.2fms\n", "latency p99", rpt.P99Ms)
	fmt.Fprintf(w, "%-22s %11.1f%%\n", "shed rate (429)", 100*rpt.ShedRate)
	fmt.Fprintf(w, "%-22s %11.1f%%\n", "coalesce hit rate", 100*rpt.CoalesceRate)
	fmt.Fprintf(w, "%-22s %11.1f%%\n", "answer-cache hit rate", 100*rpt.CacheHitRate)
	fmt.Fprintf(w, "%-22s %11.1f%%\n", "found rate", 100*rpt.FoundRate)
	fmt.Fprintf(w, "%-22s %12d\n", "engine executions", snap.Executed)
	fmt.Fprintf(w, "status counts: %v\n", statuses)
	fmt.Fprintln(w, "# every answered request did exact work or shared/cached the identical exact answer;")
	fmt.Fprintln(w, "# shed requests got 429 + Retry-After instead of queueing without bound")

	if cfg.JSONOut != "" {
		b, err := json.MarshalIndent(rpt, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONOut, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "# JSON report written to %s\n", cfg.JSONOut)
	}
	return nil
}

// percentile returns the p-quantile of sorted ms latencies (0 when empty).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func rate(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
