package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gpssn"
	"gpssn/internal/bench"
)

// This file is the `-exp serve` load generator: it stands up a real
// gpssn-serve pipeline (Server + net/http over TCP loopback) on a
// generated dataset and drives it with a large population of concurrent
// clients issuing a zipf-skewed query mix — the bursty, highly
// overlapping workload the ROADMAP's group-planning scenario predicts —
// then reports client-observed latency percentiles, throughput, shed
// rate, and the coalescing/caching/shared-work win. With RunConfig.JSONOut
// set the numbers are also written as JSON (the committed
// BENCH_serve.json). RunConfig.Compare re-runs the identical workload
// with the shared-work memo disabled first, so the committed pair of
// reports is a controlled before/after measurement.
//
// It lives in package serve rather than internal/bench because it drives
// the public gpssn facade, which internal/bench must not import (the root
// package's own tests import internal/bench); cmd/gpssn-bench registers
// it via bench.Register.

// loadGatherWindow is the gather window the load generator enables on the
// shared-work run (the same default cmd/gpssn-serve ships with).
const loadGatherWindow = time.Millisecond

// LoadExperiment returns the "serve" experiment for bench.Register.
func LoadExperiment() bench.Experiment {
	return bench.Experiment{
		Name:        "serve",
		Description: "Serving: concurrent zipf-skewed clients vs gpssn-serve (p50/p99, throughput, shed + coalesce + shared-work rates, JSON-capable)",
		Run:         runServeLoad,
	}
}

// serveReport is the JSON payload written to RunConfig.JSONOut
// (BENCH_serve.json).
type serveReport struct {
	Scale        float64 `json:"scale"`
	Seed         int64   `json:"seed"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Users        int     `json:"users"`
	RoadVertices int     `json:"road_vertices"`
	POIs         int     `json:"pois"`

	SharedWork     bool    `json:"shared_work"`
	GatherWindowMs float64 `json:"gather_window_ms"`
	Warmup         int     `json:"warmup_excluded"` // leading requests kept out of percentiles

	Clients     int     `json:"clients"`
	Requests    int     `json:"requests_total"` // logical queries (tickets)
	Attempts    int64   `json:"attempts_total"` // HTTP requests incl. shed retries
	MaxInFlight int     `json:"max_in_flight"`
	DurationMs  float64 `json:"duration_ms"`

	ThroughputRPS float64 `json:"throughput_rps"` // completed answers (200/404) per second
	P50Ms         float64 `json:"latency_p50_ms"` // post-warmup answers, incl. retry backoff
	P90Ms         float64 `json:"latency_p90_ms"`
	P99Ms         float64 `json:"latency_p99_ms"`

	// Per-endpoint percentiles over the same post-warmup window.
	QueryP50Ms float64 `json:"latency_query_p50_ms"`
	QueryP99Ms float64 `json:"latency_query_p99_ms"`
	TopKP50Ms  float64 `json:"latency_topk_p50_ms"`
	TopKP99Ms  float64 `json:"latency_topk_p99_ms"`

	ShedRate      float64 `json:"shed_rate"`            // 429s / HTTP attempts
	CoalesceRate  float64 `json:"coalesce_hit_rate"`    // coalesced / HTTP attempts
	CacheHitRate  float64 `json:"cache_hit_rate"`       // answer-cache hits / executions
	SharedHitRate float64 `json:"shared_work_hit_rate"` // combined ball+sweep memo hit rate
	FoundRate     float64 `json:"found_rate"`           // found / completed answers

	StatusCounts map[string]int64 `json:"status_counts"`
	Server       metricsSnapshot  `json:"server_statsz"`
}

// loadShape is one query shape of the mix; weights skew the draw so a few
// shapes dominate, the way production query traffic repeats itself.
type loadShape struct {
	body   func(user int) string
	topk   bool
	weight int
}

func runServeLoad(w io.Writer, cfg bench.RunConfig) error {
	if cfg.Scale == 0 {
		cfg.Scale = 0.1
	}
	if !cfg.Compare {
		_, err := driveServeLoad(w, cfg, true, cfg.JSONOut)
		return err
	}
	// Before/after on the same seed and workload: memo off (the PR 6
	// serving stack) first, then the shared-work run. Two processes'
	// worth of state in one: each drive builds its own dataset and
	// server, so the only difference is the knob under measurement.
	offOut := ""
	if cfg.JSONOut != "" {
		offOut = nomemoPath(cfg.JSONOut)
	}
	fmt.Fprintf(w, "## before: shared-work memo OFF\n")
	off, err := driveServeLoad(w, cfg, false, offOut)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n## after: shared-work memo ON (gather window %v)\n", loadGatherWindow)
	on, err := driveServeLoad(w, cfg, true, cfg.JSONOut)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n## shared-work before/after (same seed, same workload)\n")
	fmt.Fprintf(w, "%-22s %12s %12s\n", "metric", "memo off", "memo on")
	fmt.Fprintf(w, "%-22s %11.0f/s %11.0f/s\n", "throughput", off.ThroughputRPS, on.ThroughputRPS)
	fmt.Fprintf(w, "%-22s %10.0fms %10.0fms\n", "latency p50", off.P50Ms, on.P50Ms)
	fmt.Fprintf(w, "%-22s %10.0fms %10.0fms\n", "latency p99", off.P99Ms, on.P99Ms)
	fmt.Fprintf(w, "%-22s %11.1f%% %11.1f%%\n", "shed rate", 100*off.ShedRate, 100*on.ShedRate)
	fmt.Fprintf(w, "%-22s %11.1f%% %11.1f%%\n", "shared-work hit rate", 100*off.SharedHitRate, 100*on.SharedHitRate)
	return nil
}

// nomemoPath derives the memo-off report path from the memo-on one:
// BENCH_serve.json -> BENCH_serve_nomemo.json.
func nomemoPath(p string) string {
	if i := strings.LastIndex(p, "."); i > 0 {
		return p[:i] + "_nomemo" + p[i:]
	}
	return p + "_nomemo"
}

func driveServeLoad(w io.Writer, cfg bench.RunConfig, sharedWork bool, jsonOut string) (serveReport, error) {
	const (
		clients  = 1000
		requests = 8000
	)
	maxInFlight := 8 * runtime.GOMAXPROCS(0)

	// Dataset: the paper's UNI sizes at cfg.Scale, served the way
	// production would — answer cache on, hl oracle.
	scaled := func(base int) int {
		v := int(math.Round(float64(base) * cfg.Scale))
		if v < 20 {
			v = 20
		}
		return v
	}
	netw, err := gpssn.GenerateSynthetic(gpssn.SyntheticOptions{
		Name: "serve-load", Seed: cfg.Seed,
		RoadVertices: scaled(30000), Users: scaled(30000), POIs: scaled(10000),
	})
	if err != nil {
		return serveReport{}, err
	}
	db, err := gpssn.Open(netw, gpssn.Config{
		CacheSize: 4096, Parallelism: 1, DisableSharedWork: !sharedWork,
	})
	if err != nil {
		return serveReport{}, err
	}
	users := netw.NumUsers()

	srvCfg := Config{MaxInFlight: maxInFlight, MaxTimeout: 30 * time.Second}
	if sharedWork {
		srvCfg.GatherWindow = loadGatherWindow
	}
	srv := New(db, srvCfg)
	httpSrv := &http.Server{Handler: srv.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return serveReport{}, err
	}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	urls := map[bool]string{false: base + "/v1/query", true: base + "/v1/topk"}

	// The query mix: four single-answer shapes heavily weighted toward
	// one default, plus a top-k shape, over zipf-popular issuers —
	// maximal overlap, like a city's worth of users planning around the
	// same hotspots.
	shape := func(tau int, gamma, theta, r float64) func(int) string {
		return func(user int) string {
			return fmt.Sprintf(`{"user":%d,"group_size":%d,"gamma":%g,"theta":%g,"radius":%g}`,
				user, tau, gamma, theta, r)
		}
	}
	topkShape := func(tau int, gamma, theta, r float64, k int) func(int) string {
		return func(user int) string {
			return fmt.Sprintf(`{"user":%d,"group_size":%d,"gamma":%g,"theta":%g,"radius":%g,"k":%d}`,
				user, tau, gamma, theta, r, k)
		}
	}
	shapes := []loadShape{
		{shape(5, 0.5, 0.5, 2), false, 8},
		{shape(3, 0.5, 0.5, 1), false, 4},
		{shape(5, 0.3, 0.5, 2), false, 2},
		{shape(7, 0.5, 0.7, 3), false, 1},
		{topkShape(3, 0.5, 0.5, 2, 3), true, 1},
	}
	var weighted []int
	for i, s := range shapes {
		for j := 0; j < s.weight; j++ {
			weighted = append(weighted, i)
		}
	}

	transport := &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
	}
	client := &http.Client{Transport: transport}

	var (
		next      atomic.Int64 // global ticket: one per logical query
		attempts  atomic.Int64 // HTTP requests, including shed retries
		mu        sync.Mutex
		completed int64     // all completed answers (throughput window)
		latencies []float64 // ms, first attempt -> final answer, post-warmup
		latQuery  []float64 // per-endpoint splits of latencies
		latTopk   []float64
		statuses  = map[string]int64{}
		found     int64
	)
	record := func(topk bool, status int, ms float64, f, warm bool) {
		mu.Lock()
		defer mu.Unlock()
		statuses[fmt.Sprint(status)]++
		if status == http.StatusOK || status == http.StatusNotFound {
			completed++
			if f {
				found++
			}
			if warm {
				return // warmup transient: counts for throughput, not percentiles
			}
			latencies = append(latencies, ms)
			if topk {
				latTopk = append(latTopk, ms)
			} else {
				latQuery = append(latQuery, ms)
			}
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			// Zipf over issuers: a few hotspot users dominate.
			zipf := rand.NewZipf(rng, 1.3, 8, uint64(users-1))
			for {
				ticket := next.Add(1)
				if ticket > requests {
					return
				}
				warm := ticket <= int64(cfg.Warmup)
				user := int(zipf.Uint64())
				sh := shapes[weighted[rng.Intn(len(weighted))]]
				body := sh.body(user)
				t0 := time.Now()
				// One logical query: a shed (429) is retried with jittered
				// exponential backoff, the well-behaved-client protocol
				// docs/SERVING.md prescribes; latency is first-attempt to
				// final answer.
				backoff := 4 * time.Millisecond
				for {
					attempts.Add(1)
					resp, err := client.Post(urls[sh.topk], "application/json", bytes.NewReader([]byte(body)))
					if err != nil {
						record(sh.topk, 0, 0, false, warm)
						break
					}
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusTooManyRequests {
						mu.Lock()
						statuses["429"]++
						mu.Unlock()
						time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff))))
						if backoff < 512*time.Millisecond {
							backoff *= 2
						}
						continue
					}
					f := false
					if resp.StatusCode == http.StatusOK {
						if sh.topk {
							var tr topKResponse
							if json.Unmarshal(b, &tr) == nil {
								f = len(tr.Answers) > 0
							}
						} else {
							var qr queryResponse
							if json.Unmarshal(b, &qr) == nil {
								f = qr.Found
							}
						}
					}
					record(sh.topk, resp.StatusCode, float64(time.Since(t0).Microseconds())/1000, f, warm)
					break
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := srv.snapshot()

	sort.Float64s(latencies)
	sort.Float64s(latQuery)
	sort.Float64s(latTopk)
	rpt := serveReport{
		Scale: cfg.Scale, Seed: cfg.Seed, GOMAXPROCS: runtime.GOMAXPROCS(0),
		Users: users, RoadVertices: netw.NumIntersections(), POIs: netw.NumPOIs(),
		SharedWork:     sharedWork,
		GatherWindowMs: snap.GatherWindowMs,
		Warmup:         cfg.Warmup,
		Clients:        clients, Requests: requests, Attempts: attempts.Load(), MaxInFlight: maxInFlight,
		DurationMs:    float64(elapsed.Microseconds()) / 1000,
		ThroughputRPS: float64(completed) / elapsed.Seconds(),
		P50Ms:         percentile(latencies, 0.50),
		P90Ms:         percentile(latencies, 0.90),
		P99Ms:         percentile(latencies, 0.99),
		QueryP50Ms:    percentile(latQuery, 0.50),
		QueryP99Ms:    percentile(latQuery, 0.99),
		TopKP50Ms:     percentile(latTopk, 0.50),
		TopKP99Ms:     percentile(latTopk, 0.99),
		ShedRate:      rate(snap.Shed, attempts.Load()),
		CoalesceRate:  rate(snap.Coalesced, attempts.Load()),
		CacheHitRate:  rate(snap.CacheHits, snap.Executed),
		FoundRate:     rate(found, completed),
		StatusCounts:  statuses,
		Server:        snap,
	}
	if sw := snap.SharedWork; sw != nil {
		rpt.SharedHitRate = sw.HitRate
	}

	fmt.Fprintf(w, "# Serving: %d clients, %d queries (%d HTTP attempts), zipf-skewed mix, max-inflight %d (GOMAXPROCS=%d)\n",
		clients, requests, rpt.Attempts, maxInFlight, rpt.GOMAXPROCS)
	fmt.Fprintf(w, "dataset: UNI scale %.2f (%d users, %d road vertices, %d POIs); shared-work=%v warmup=%d\n",
		cfg.Scale, rpt.Users, rpt.RoadVertices, rpt.POIs, sharedWork, cfg.Warmup)
	fmt.Fprintf(w, "%-22s %12s\n", "metric", "value")
	fmt.Fprintf(w, "%-22s %11.0f/s\n", "throughput (answers)", rpt.ThroughputRPS)
	fmt.Fprintf(w, "%-22s %10.2fms\n", "latency p50", rpt.P50Ms)
	fmt.Fprintf(w, "%-22s %10.2fms\n", "latency p90", rpt.P90Ms)
	fmt.Fprintf(w, "%-22s %10.2fms\n", "latency p99", rpt.P99Ms)
	fmt.Fprintf(w, "%-22s %10.2fms\n", "query p99", rpt.QueryP99Ms)
	fmt.Fprintf(w, "%-22s %10.2fms\n", "topk p99", rpt.TopKP99Ms)
	fmt.Fprintf(w, "%-22s %11.1f%%\n", "shed rate (429)", 100*rpt.ShedRate)
	fmt.Fprintf(w, "%-22s %11.1f%%\n", "coalesce hit rate", 100*rpt.CoalesceRate)
	fmt.Fprintf(w, "%-22s %11.1f%%\n", "answer-cache hit rate", 100*rpt.CacheHitRate)
	if sw := snap.SharedWork; sw != nil {
		fmt.Fprintf(w, "%-22s %11.1f%%\n", "shared-work hit rate", 100*rpt.SharedHitRate)
		fmt.Fprintf(w, "%-22s %6d/%d\n", "ball memo hits/misses", sw.BallHits, sw.BallMisses)
		fmt.Fprintf(w, "%-22s %6d/%d\n", "sweep memo hits/misses", sw.SweepHits, sw.SweepMisses)
		fmt.Fprintf(w, "%-22s %6d/%d\n", "gather batches/reqs", snap.GatherBatches, snap.GatherBatched)
	}
	fmt.Fprintf(w, "%-22s %11.1f%%\n", "found rate", 100*rpt.FoundRate)
	fmt.Fprintf(w, "%-22s %12d\n", "engine executions", snap.Executed)
	fmt.Fprintf(w, "status counts: %v\n", statuses)
	fmt.Fprintln(w, "# every answered request did exact work or shared/cached the identical exact answer;")
	fmt.Fprintln(w, "# shed requests got 429 + Retry-After instead of queueing without bound")

	if jsonOut != "" {
		b, err := json.MarshalIndent(rpt, "", "  ")
		if err != nil {
			return rpt, err
		}
		if err := os.WriteFile(jsonOut, append(b, '\n'), 0o644); err != nil {
			return rpt, err
		}
		fmt.Fprintf(w, "# JSON report written to %s\n", jsonOut)
	}
	return rpt, nil
}

// percentile returns the p-quantile of sorted ms latencies (0 when empty).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func rate(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
