package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// gatherer implements the gather window: a short, configurable hold that
// releases queued query requests in aligned batches instead of letting
// them trickle into the engine one by one. Released together, overlapping
// queries hit the engine's shared-work memo while their twins' ball and
// sweep builds are still in flight, so the singleflight there folds them
// into one batched construction pass — the window does not itself merge
// work, it lines requests up so the memo can.
//
// The hold costs every request up to one window of added latency, which
// is why it is off by default in the library (Config.GatherWindow 0) and
// only enabled by gpssn-serve, where ~1ms is noise against engine
// latencies; see docs/SERVING.md §4a for tuning.
type gatherer struct {
	window time.Duration

	mu  sync.Mutex
	cur *batch

	batches  atomic.Int64 // windows that closed
	batched  atomic.Int64 // requests released by those windows
	maxBatch atomic.Int64 // largest single window
}

type batch struct {
	release chan struct{}
	size    int
}

func newGatherer(window time.Duration) *gatherer {
	return &gatherer{window: window}
}

// hold blocks until the current gather window closes (or ctx fires, so an
// abandoning client never waits on the batch). The first request after a
// release opens the next window and arms its timer; everyone arriving
// within the window joins it. A zero window is a no-op.
func (g *gatherer) hold(ctx context.Context) {
	if g == nil || g.window <= 0 {
		return
	}
	g.mu.Lock()
	b := g.cur
	if b == nil {
		b = &batch{release: make(chan struct{})}
		g.cur = b
		time.AfterFunc(g.window, func() { g.close(b) })
	}
	b.size++
	g.mu.Unlock()

	select {
	case <-b.release:
	case <-ctx.Done():
	}
}

// close releases a window's batch and records its size.
func (g *gatherer) close(b *batch) {
	g.mu.Lock()
	if g.cur == b {
		g.cur = nil
	}
	size := int64(b.size)
	g.mu.Unlock()

	g.batches.Add(1)
	g.batched.Add(size)
	for {
		old := g.maxBatch.Load()
		if size <= old || g.maxBatch.CompareAndSwap(old, size) {
			break
		}
	}
	close(b.release)
}
