package gpssn

import (
	"fmt"

	"gpssn/internal/model"
	"gpssn/internal/socialnet"
)

// Subnetwork extracts the social neighbourhood of a user: the users within
// the given hop distance, their induced friendships, and the full road
// network and POI set. The returned network renumbers users; the returned
// slice maps each new id to its original id. Useful for debugging a
// query's candidate set or for demoing on a zoomed-in piece of a large
// network.
func (n *Network) Subnetwork(user int, hops int) (*Network, []int, error) {
	if user < 0 || user >= len(n.ds.Users) {
		return nil, nil, fmt.Errorf("gpssn: user %d out of range [0,%d)", user, len(n.ds.Users))
	}
	if hops < 0 {
		return nil, nil, fmt.Errorf("gpssn: negative hop bound %d", hops)
	}
	keep := n.ds.Social.WithinHops(socialnet.UserID(user), int32(hops))
	oldToNew := make(map[socialnet.UserID]int, len(keep))
	mapping := make([]int, len(keep))
	for i, u := range keep {
		oldToNew[u] = i
		mapping[i] = int(u)
	}

	social := socialnet.NewGraph(len(keep))
	for _, u := range keep {
		for _, v := range n.ds.Social.Friends(u) {
			if nv, ok := oldToNew[v]; ok && oldToNew[u] < nv {
				social.AddFriendship(socialnet.UserID(oldToNew[u]), socialnet.UserID(nv))
			}
		}
	}

	users := make([]model.User, len(keep))
	for i, u := range keep {
		orig := n.ds.Users[u]
		users[i] = model.User{
			ID:        socialnet.UserID(i),
			At:        orig.At,
			Loc:       orig.Loc,
			Interests: append([]float64(nil), orig.Interests...),
		}
	}

	// POIs and the road network are shared structures; copy the POI slice
	// so the subnetwork stays independent for mutation-free use.
	pois := make([]model.POI, len(n.ds.POIs))
	copy(pois, n.ds.POIs)

	ds := &model.Dataset{
		Name:      fmt.Sprintf("%s-around-u%d", n.ds.Name, user),
		Road:      n.ds.Road,
		Social:    social,
		Users:     users,
		POIs:      pois,
		NumTopics: n.ds.NumTopics,
	}
	if err := ds.Validate(); err != nil {
		return nil, nil, fmt.Errorf("gpssn: subnetwork invalid: %w", err)
	}
	return &Network{ds: ds}, mapping, nil
}
