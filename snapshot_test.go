package gpssn

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gpssn/internal/failpoint"
)

// snapQueries is the query set every snapshot equality gate runs.
var snapQueries = []Query{
	{GroupSize: 3, Gamma: 0.3, Theta: 0.4, Radius: 2},
	{GroupSize: 2, Gamma: 0.5, Theta: 0.5, Radius: 1},
	{GroupSize: 4, Gamma: 0.2, Theta: 0.3, Radius: 3},
}

// snapshotOf saves db into a fresh temp file and returns the path.
func snapshotOf(t *testing.T, db *DB) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "net.snap")
	if err := db.Snapshot(path); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return path
}

// openSnap opens a snapshot with the standard test configuration.
func openSnap(t *testing.T, path, oracle string, parallelism int) *DB {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.RoadPivots = 4
	cfg.DistanceOracle = oracle
	cfg.Parallelism = parallelism
	db, err := OpenSnapshot(path, cfg)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	return db
}

// requireIdenticalAnswers drives both DBs through the full query set over
// every user and demands bit-identical outcomes — a restored snapshot has
// the same oracle bytes as the saved DB, so unlike cross-oracle equality
// gates there is no 1-ULP tolerance here.
func requireIdenticalAnswers(t *testing.T, want, got *DB, label string) {
	t.Helper()
	for _, q := range snapQueries {
		for user := 0; user < want.Network().NumUsers(); user += 7 {
			a1, _, err1 := want.Query(user, q)
			a2, _, err2 := got.Query(user, q)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s: user %d %+v: err %v vs %v", label, user, q, err1, err2)
			}
			if err1 != nil {
				if !errors.Is(err1, ErrNoAnswer) || !errors.Is(err2, ErrNoAnswer) {
					t.Fatalf("%s: unexpected errors %v / %v", label, err1, err2)
				}
				continue
			}
			if answerKey(a1) != answerKey(a2) || a1.MaxDistance != a2.MaxDistance {
				t.Fatalf("%s: user %d %+v:\n  want %s cost=%v\n  got  %s cost=%v",
					label, user, q, answerKey(a1), a1.MaxDistance, answerKey(a2), a2.MaxDistance)
			}
		}
	}
}

// TestSnapshotRoundTrip is the tentpole equality gate: save, reload, and
// demand bit-identical answers under every oracle at parallelism 1 and 8.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, oracle := range []string{"hl", "ch", "dijkstra"} {
		for _, par := range []int{1, 8} {
			t.Run(oracle, func(t *testing.T) {
				db := openWithOracle(t, 1, false, oracle, par)
				re := openSnap(t, snapshotOf(t, db), oracle, par)
				if h := re.Health(); h.Degraded || len(h.Notes) != 0 {
					t.Fatalf("clean restore reported degraded health: %+v", h)
				}
				if h := re.Health(); h.OracleActive != oracle {
					t.Fatalf("restored oracle %q, want %q", h.OracleActive, oracle)
				}
				requireIdenticalAnswers(t, db, re, oracle)
			})
		}
	}
}

// TestSnapshotCrossOracleRestore opens an hl-written snapshot as ch and
// dijkstra (both sections are in the file or derivable), and a ch-written
// snapshot as hl (labels absent → rebuilt, noted in Health).
func TestSnapshotCrossOracleRestore(t *testing.T) {
	hlDB := openWithOracle(t, 1, false, "hl", 1)
	path := snapshotOf(t, hlDB)

	chDB := openSnap(t, path, "ch", 1)
	if h := chDB.Health(); h.OracleActive != "ch" || h.Degraded {
		t.Fatalf("ch restore health: %+v", h)
	}
	baseline := openWithOracle(t, 1, false, "ch", 1)
	requireIdenticalAnswers(t, baseline, chDB, "hl-snapshot-as-ch")

	chOnly := openWithOracle(t, 1, false, "ch", 1)
	path2 := snapshotOf(t, chOnly)
	hlRe, err := OpenSnapshot(path2, func() Config {
		c := DefaultConfig()
		c.Seed = 1
		c.RoadPivots = 4
		c.DistanceOracle = "hl"
		c.Parallelism = 1
		return c
	}())
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	h := hlRe.Health()
	if h.OracleActive != "hl" || h.Degraded {
		t.Fatalf("hl rebuild health: %+v", h)
	}
	if len(h.Notes) == 0 {
		t.Fatal("rebuilding absent HL labels left no Health note")
	}
	requireIdenticalAnswers(t, hlDB, hlRe, "ch-snapshot-as-hl")
}

// TestSnapshotCorruptionMatrix damages each oracle section every way the
// failpoint layer can (I/O error, torn write, bit flip) and requires: no
// panic, open succeeds, the damage is noted in Health, and the recovered
// DB answers exactly like a cleanly-built baseline.
func TestSnapshotCorruptionMatrix(t *testing.T) {
	baseline := openWithOracle(t, 1, false, "hl", 1)
	cases := []struct {
		name string
		site string
		f    failpoint.Failure
	}{
		{"torn-ch", "snap.section." + secCH, failpoint.Failure{Mode: failpoint.ModeShortWrite, N: 40}},
		{"torn-hl", "snap.section." + secHL, failpoint.Failure{Mode: failpoint.ModeShortWrite, N: 11}},
		{"bitflip-ch", "snap.section." + secCH, failpoint.Failure{Mode: failpoint.ModeBitFlip, N: 1337}},
		{"bitflip-hl", "snap.section." + secHL, failpoint.Failure{Mode: failpoint.ModeBitFlip, N: 4242}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer failpoint.Reset()
			db := openWithOracle(t, 1, false, "hl", 1)
			failpoint.Arm(tc.site, tc.f)
			path := snapshotOf(t, db)
			failpoint.Reset()

			re := openSnap(t, path, "hl", 1)
			h := re.Health()
			if len(h.Notes) == 0 {
				t.Fatalf("%s: damaged snapshot recovered without a Health note", tc.name)
			}
			if h.OracleActive != "hl" {
				t.Fatalf("%s: recovery ended on %q, want rebuilt hl", tc.name, h.OracleActive)
			}
			requireIdenticalAnswers(t, baseline, re, tc.name)
		})
	}
}

// TestSnapshotDatasetDamageIsFatal verifies the unrecoverable domain: a
// snapshot whose dataset section is torn or flipped fails typed — never a
// panic, never a silently-empty DB.
func TestSnapshotDatasetDamageIsFatal(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    failpoint.Failure
	}{
		{"torn", failpoint.Failure{Mode: failpoint.ModeShortWrite, N: 100}},
		{"bitflip", failpoint.Failure{Mode: failpoint.ModeBitFlip, N: 999}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer failpoint.Reset()
			db := openWithOracle(t, 1, false, "ch", 1)
			failpoint.Arm("snap.section."+secDataset, tc.f)
			path := snapshotOf(t, db)
			failpoint.Reset()

			_, err := OpenSnapshot(path, DefaultConfig())
			if !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("%s dataset damage: err = %v, want ErrSnapshotCorrupt", tc.name, err)
			}
			var se *SnapshotError
			if !errors.As(err, &se) {
				t.Fatalf("error %v is not a *SnapshotError", err)
			}
		})
	}
}

// TestSnapshotTruncationMatrix cuts the snapshot file at a spread of
// lengths. Every cut must either open (rebuilding what was lost, equal to
// baseline) or fail with ErrSnapshotCorrupt — never panic.
func TestSnapshotTruncationMatrix(t *testing.T) {
	db := openWithOracle(t, 1, false, "hl", 1)
	path := snapshotOf(t, db)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{0, 1, 7, 8, 11, 20, len(full) / 2, len(full) - 9, len(full) - 1}
	for step := 31; step < len(full); step += 977 {
		cuts = append(cuts, step)
	}
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.RoadPivots = 4
	cfg.Parallelism = 1
	opened := 0
	for _, cut := range cuts {
		if cut > len(full) {
			continue
		}
		p := filepath.Join(t.TempDir(), "cut.snap")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenSnapshot(p, cfg)
		if err != nil {
			if !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("cut=%d: err = %v, want ErrSnapshotCorrupt", cut, err)
			}
			continue
		}
		opened++
		requireIdenticalAnswers(t, db, re, "truncated")
	}
	// The full file must of course open; shorter prefixes mostly fail.
	re, err := OpenSnapshot(path, cfg)
	if err != nil {
		t.Fatalf("untruncated file failed: %v", err)
	}
	requireIdenticalAnswers(t, db, re, "full")
	t.Logf("%d/%d truncated prefixes were recoverable", opened, len(cuts))
}

// TestSnapshotWriteFailpoints proves the crash-safe write discipline: an
// injected failure at any stage (temp creation, section write, fsync,
// rename) errors out, leaves a previously-written snapshot untouched, and
// litters no temp files.
func TestSnapshotWriteFailpoints(t *testing.T) {
	db := openWithOracle(t, 1, false, "ch", 1)
	dir := t.TempDir()
	path := filepath.Join(dir, "net.snap")
	if err := db.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected io failure")
	sites := []string{
		"snapshot.create", "snap.section." + secDataset, "snap.section." + secCH,
		"snapshot.sync", "snapshot.rename",
	}
	for _, site := range sites {
		t.Run(site, func(t *testing.T) {
			defer failpoint.Reset()
			failpoint.Arm(site, failpoint.Failure{Mode: failpoint.ModeError, Err: boom})
			if err := db.Snapshot(path); !errors.Is(err, boom) {
				t.Fatalf("Snapshot with %s armed: err = %v, want injected failure", site, err)
			}
			failpoint.Reset()
			after, err := os.ReadFile(path)
			if err != nil || string(after) != string(good) {
				t.Fatalf("failed snapshot damaged the existing file (err=%v)", err)
			}
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(ents) != 1 {
				t.Fatalf("temp files littered after failure: %v", ents)
			}
		})
	}
}

// TestOpenSnapshotMissingFile keeps plain I/O errors out of the
// corruption taxonomy.
func TestOpenSnapshotMissingFile(t *testing.T) {
	_, err := OpenSnapshot(filepath.Join(t.TempDir(), "absent.snap"), DefaultConfig())
	if err == nil || errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("missing file: err = %v, want a plain I/O error", err)
	}
}
