// Group-buying marketing (the paper's Example 2): a deals platform wants to
// send a coupon to a seed customer, a group of their like-minded friends,
// and a cluster of participating merchants near all of them. The example
// runs the campaign over a real-like Brightkite-style network and reports
// which merchant keywords the matched groups respond to.
package main

import (
	"errors"
	"fmt"
	"log"

	"gpssn"
)

func main() {
	fmt.Println("generating a real-like check-in network (Bri+Cal at 5% scale)...")
	net, err := gpssn.GenerateRealLike(gpssn.BrightkiteCalifornia, 7, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(net.Stats())

	db, err := gpssn.Open(net, gpssn.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexes built in %s\n\n", db.BuildTime)

	// Campaign: coupons require a group of 4 buyers; merchants must match
	// every group member's interests, and the merchant cluster must be
	// within a radius-2 ball so the group can visit them in one trip.
	query := gpssn.Query{GroupSize: 4, Gamma: 0.4, Theta: 0.4, Radius: 2}

	campaigns := 0
	for seed := 0; seed < 60 && campaigns < 5; seed += 3 {
		ans, _, err := db.Query(seed, query)
		if errors.Is(err, gpssn.ErrNoAnswer) {
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		campaigns++
		// Which merchant categories does this group share?
		cover := map[int]int{}
		for _, poi := range ans.POIs {
			for _, kw := range net.POIKeywords(poi) {
				cover[kw]++
			}
		}
		fmt.Printf("campaign %d: seed customer %d, group %v\n", campaigns, seed, ans.Users)
		fmt.Printf("  %d merchants (anchor %d), max travel %.2f\n",
			len(ans.POIs), ans.Anchor, ans.MaxDistance)
		fmt.Printf("  merchant categories covered: %v\n", keys(cover))
	}
	if campaigns == 0 {
		fmt.Println("no viable campaign found — lower the thresholds")
	}
}

func keys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// small, insertion-sort for stable output
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
