// Serving: run the gpssn-serve HTTP layer in-process on a generated
// dataset and talk to it the way production clients do — a health check,
// a query, a top-k query — then demonstrate admission control by
// shrinking the in-flight limit to 1 and firing a concurrent burst:
// excess requests are shed with 429 + Retry-After instead of queueing,
// and a polite retry after the hint succeeds. The full operator's
// handbook for everything shown here is docs/SERVING.md.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"gpssn"
	"gpssn/internal/serve"
)

func main() {
	// A small city: ~2000 road vertices, 2000 users, 600 POIs.
	netw, err := gpssn.GenerateSynthetic(gpssn.SyntheticOptions{
		Name: "serve-example", Seed: 7,
		RoadVertices: 2000, Users: 2000, POIs: 600,
	})
	if err != nil {
		log.Fatal(err)
	}
	db, err := gpssn.Open(netw, gpssn.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The serving layer cmd/gpssn-serve wraps: admission control,
	// request coalescing, per-request deadlines, drain. MaxInFlight is
	// deliberately tiny so the shedding demo below can saturate it.
	srv := serve.New(db, serve.Config{
		MaxInFlight:    1,
		DefaultTimeout: 5 * time.Second,
		RetryAfter:     time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %d users / %d POIs on %s\n\n", netw.NumUsers(), netw.NumPOIs(), ln.Addr())

	// 1. The health check a load balancer would poll.
	show("GET /healthz", get(base+"/healthz"))

	// 2. One query: the best group of 5 around user 42, like
	//    curl -d '{"user":42,...}' localhost:8080/v1/query
	q := `{"user":42,"group_size":5,"gamma":0.4,"theta":0.4,"radius":3}`
	show("POST /v1/query  "+q, post(base+"/v1/query", q))

	// 3. Top-k: the 3 best answers, distinct anchors.
	qk := `{"user":42,"group_size":5,"gamma":0.4,"theta":0.4,"radius":3,"k":3}`
	show("POST /v1/topk  "+qk, post(base+"/v1/topk", qk))

	// 4. Load shedding: 16 different queries at once against a server
	//    that executes one at a time. The excess is rejected immediately
	//    with 429 — bounded latency for the admitted, backpressure for
	//    the rest — not silently queued.
	fmt.Println("-- burst: 16 concurrent queries, max-inflight 1 --")
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		ok, shed   int
		retryAfter string
		shedBody   string
	)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(user int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"user":%d,"group_size":6,"gamma":0.3,"theta":0.3,"radius":4}`, user)
			resp := post(base+"/v1/query", body)
			mu.Lock()
			defer mu.Unlock()
			switch resp.status {
			case http.StatusTooManyRequests:
				shed++
				retryAfter = resp.header.Get("Retry-After")
				shedBody = resp.body
			default:
				ok++
			}
		}(100 + i*17)
	}
	wg.Wait()
	fmt.Printf("answered: %d, shed with 429: %d\n", ok, shed)
	if shed > 0 {
		fmt.Printf("a shed response (Retry-After: %ss): %s\n", retryAfter, shedBody)
	}

	// 5. The prescribed client reaction: wait the hint out, try again.
	time.Sleep(time.Second)
	resp := post(base+"/v1/query", q)
	fmt.Printf("retry after backoff: %d\n\n", resp.status)

	// 6. /statsz shows what happened, in counters a dashboard would diff.
	show("GET /statsz", get(base+"/statsz"))
}

type reply struct {
	status int
	header http.Header
	body   string
}

func get(url string) reply {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	return read(resp)
}

func post(url, body string) reply {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	return read(resp)
}

func read(resp *http.Response) reply {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return reply{status: resp.StatusCode, header: resp.Header, body: string(bytes.TrimSpace(b))}
}

// show pretty-prints one exchange.
func show(title string, r reply) {
	fmt.Printf("-- %s --\n", title)
	var v any
	if json.Unmarshal([]byte(r.body), &v) == nil {
		pretty, _ := json.MarshalIndent(v, "", "  ")
		fmt.Printf("%d %s\n\n", r.status, pretty)
		return
	}
	fmt.Printf("%d %s\n\n", r.status, r.body)
}
