// Quickstart: build a tiny spatial-social network by hand (the network of
// the paper's Figure 1 / Table 1), index it, and ask a GP-SSN query —
// "find me one friend and a set of nearby POIs we both like".
package main

import (
	"fmt"
	"log"

	"gpssn"
)

func main() {
	// Topics: 0 = restaurant, 1 = shopping mall, 2 = cafe.
	topicNames := []string{"restaurant", "shopping mall", "cafe"}
	b := gpssn.NewBuilder(3).SetName("quickstart")

	// A 3x2 block of streets.
	var v [6]int
	coords := [][2]float64{{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 1}, {2, 1}}
	for i, c := range coords {
		v[i] = b.AddIntersection(c[0], c[1])
	}
	b.AddRoad(v[0], v[1]).AddRoad(v[1], v[2])
	b.AddRoad(v[3], v[4]).AddRoad(v[4], v[5])
	b.AddRoad(v[0], v[3]).AddRoad(v[1], v[4]).AddRoad(v[2], v[5])

	// POIs on the streets.
	b.AddPOI(0.5, 0, 0)    // a restaurant
	b.AddPOI(1.5, 0, 1)    // a mall
	b.AddPOI(0.5, 1, 2)    // a cafe
	b.AddPOI(1.5, 1, 0, 2) // a restaurant-cafe

	// The five users of Table 1 with their interest vectors.
	interests := [][]float64{
		{0.7, 0.3, 0.7},
		{0.2, 0.9, 0.3},
		{0.4, 0.8, 0.8},
		{0.9, 0.7, 0.7},
		{0.1, 0.8, 0.5},
	}
	homes := [][2]float64{{0.1, 0}, {1.2, 0}, {1.9, 0.5}, {0.3, 1}, {1.7, 1}}
	var u [5]int
	for i := range interests {
		u[i] = b.AddUser(homes[i][0], homes[i][1], interests[i])
	}
	b.AddFriendship(u[0], u[1]).AddFriendship(u[0], u[2]).AddFriendship(u[1], u[2])
	b.AddFriendship(u[2], u[3]).AddFriendship(u[3], u[4])

	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	db, err := gpssn.Open(net, gpssn.Config{
		RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// User u1 wants one companion (group of 2) with interest score >= 0.5,
	// POIs within a ball of radius 1.5 that match both (score >= 0.5).
	ans, stats, err := db.Query(u[0], gpssn.Query{
		GroupSize: 2, Gamma: 0.5, Theta: 0.5, Radius: 1.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("group: users %v\n", ans.Users)
	fmt.Printf("POIs to visit (anchor %d):\n", ans.Anchor)
	for _, poi := range ans.POIs {
		kws := net.POIKeywords(poi)
		names := make([]string, len(kws))
		for i, k := range kws {
			names[i] = topicNames[k]
		}
		x, y := net.POILocation(poi)
		fmt.Printf("  POI %d at (%.1f, %.1f): %v\n", poi, x, y, names)
	}
	fmt.Printf("max travel distance: %.3f\n", ans.MaxDistance)
	fmt.Printf("query cost: %s CPU, %d page reads\n", stats.CPUTime, stats.PageReads)
}
