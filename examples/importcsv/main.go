// CSV import: load a spatial-social network from external CSV data (the
// way you would bring in a real road network plus a check-in dataset) and
// answer a query over it. The CSV payloads are embedded here so the
// example is self-contained; point the readers at files for real data.
package main

import (
	"fmt"
	"log"
	"strings"

	"gpssn"
)

const roadVertices = `# id,x,y — intersections of a small downtown
0,0,0
1,2,0
2,4,0
3,0,2
4,2,2
5,4,2
6,2,4`

const roadEdges = `# u,v — road segments
0,1
1,2
3,4
4,5
0,3
1,4
2,5
4,6`

const socialEdges = `# u,v — friendships
0,1
0,2
1,2
2,3
3,4`

const users = `# id,x,y,coffee,books,music
0,0.2,0.0,0.9,0.6,0.0
1,1.5,0.0,0.8,0.5,0.1
2,2.2,1.8,0.7,0.7,0.0
3,3.8,1.9,0.1,0.2,0.9
4,2.0,3.5,0.0,0.1,0.8`

const pois = `# id,x,y,keywords (0=coffee 1=books 2=music)
0,1.0,0.0,0
1,2.0,1.0,0;1
2,3.0,2.0,1
3,2.0,3.0,2
4,0.5,2.0,0;2`

func main() {
	net, err := gpssn.ImportCSV(gpssn.CSVInput{
		Name:         "downtown",
		RoadVertices: strings.NewReader(roadVertices),
		RoadEdges:    strings.NewReader(roadEdges),
		SocialEdges:  strings.NewReader(socialEdges),
		Users:        strings.NewReader(users),
		POIs:         strings.NewReader(pois),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(net.Stats())

	db, err := gpssn.Open(net, gpssn.Config{
		RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// User 0 (a coffee-and-books person) wants one compatible friend and a
	// walkable cluster of matching places.
	ans, stats, err := db.Query(0, gpssn.Query{
		GroupSize: 2, Gamma: 0.5, Theta: 0.6, Radius: 1.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	topicNames := []string{"coffee", "books", "music"}
	fmt.Printf("group: %v\n", ans.Users)
	for _, poi := range ans.POIs {
		names := []string{}
		for _, k := range net.POIKeywords(poi) {
			names = append(names, topicNames[k])
		}
		fmt.Printf("  visit POI %d: %v\n", poi, names)
	}
	fmt.Printf("max walk: %.2f, answered in %s with %d page reads\n",
		ans.MaxDistance, stats.CPUTime, stats.PageReads)
}
