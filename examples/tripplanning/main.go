// Trip planning (the paper's Example 1): a user on a city-scale synthetic
// spatial-social network asks for a group of like-minded friends and a
// cluster of POIs close to everyone — then compares group sizes, and pulls
// a top-3 list of alternative destinations.
package main

import (
	"errors"
	"fmt"
	"log"

	"gpssn"
)

func main() {
	fmt.Println("generating a synthetic city (this takes a few seconds)...")
	net, err := gpssn.GenerateSynthetic(gpssn.SyntheticOptions{
		Name: "trip-city", Seed: 42,
		RoadVertices: 4000, Users: 4000, POIs: 1500,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(net.Stats())

	db, err := gpssn.Open(net, gpssn.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexes built in %s\n\n", db.BuildTime)

	const issuer = 123

	// How does the trip change as the group grows?
	for _, tau := range []int{2, 3, 5} {
		ans, stats, err := db.Query(issuer, gpssn.Query{
			GroupSize: tau, Gamma: 0.5, Theta: 0.5, Radius: 2,
		})
		if errors.Is(err, gpssn.ErrNoAnswer) {
			fmt.Printf("tau=%d: no feasible group\n", tau)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tau=%d: group %v visits %d POIs around anchor %d, max distance %.2f (%s, %d I/Os)\n",
			tau, ans.Users, len(ans.POIs), ans.Anchor, ans.MaxDistance,
			stats.CPUTime, stats.PageReads)
	}

	// Turn-by-turn route: the road polyline from the issuer's home to the
	// chosen anchor, for the last answer above.
	if ans, _, err := db.Query(issuer, gpssn.Query{
		GroupSize: 3, Gamma: 0.5, Theta: 0.5, Radius: 2,
	}); err == nil {
		dist, pts, rerr := net.Route(issuer, ans.Anchor)
		if rerr == nil {
			fmt.Printf("\nroute from user %d's home to anchor POI %d: %.2f road units, %d waypoints\n",
				issuer, ans.Anchor, dist, len(pts))
		}
	}

	// Alternative destinations: top-3 distinct POI clusters for a trio.
	fmt.Println("\ntop-3 destination alternatives for a group of 3:")
	answers, _, err := db.QueryTopK(issuer, gpssn.Query{
		GroupSize: 3, Gamma: 0.5, Theta: 0.5, Radius: 2,
	}, 3)
	if err != nil {
		log.Fatal(err)
	}
	if len(answers) == 0 {
		fmt.Println("  none feasible")
		return
	}
	for i, ans := range answers {
		x, y := net.POILocation(ans.Anchor)
		fmt.Printf("  #%d: anchor POI %d at (%.1f, %.1f), %d POIs, max distance %.2f\n",
			i+1, ans.Anchor, x, y, len(ans.POIs), ans.MaxDistance)
	}
}
