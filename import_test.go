package gpssn

import (
	"errors"
	"strings"
	"testing"
)

func csvNetwork(t *testing.T) *Network {
	t.Helper()
	net, err := ImportCSV(CSVInput{
		Name: "csv-city",
		RoadVertices: strings.NewReader(`0,0,0
1,2,0
2,2,2
3,0,2`),
		RoadEdges: strings.NewReader(`0,1
1,2
2,3
3,0`),
		SocialEdges: strings.NewReader(`0,1
1,2
0,2`),
		Users: strings.NewReader(`0,0.2,0,0.9,0.1,0
1,1.5,0,0.8,0.2,0
2,2,1.5,0.7,0.3,0.1`),
		POIs: strings.NewReader(`0,1,0,0
1,2,1,0;1
2,0.5,2,2`),
	})
	if err != nil {
		t.Fatalf("ImportCSV: %v", err)
	}
	return net
}

func TestImportCSVAndQuery(t *testing.T) {
	net := csvNetwork(t)
	if net.NumUsers() != 3 || net.NumPOIs() != 3 || net.NumTopics() != 3 {
		t.Fatalf("sizes: %d users %d POIs %d topics", net.NumUsers(), net.NumPOIs(), net.NumTopics())
	}
	db, err := Open(net, Config{RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	ans, _, err := db.Query(0, Query{GroupSize: 2, Gamma: 0.3, Theta: 0.3, Radius: 2})
	if err != nil && !errors.Is(err, ErrNoAnswer) {
		t.Fatalf("Query: %v", err)
	}
	if err == nil && len(ans.Users) != 2 {
		t.Errorf("answer = %+v", ans)
	}
}

func TestImportCSVRejectsBadInput(t *testing.T) {
	_, err := ImportCSV(CSVInput{})
	if err == nil {
		t.Error("empty input should fail")
	}
}

func TestQueryTopKFacade(t *testing.T) {
	net := figure1Network(t)
	db, err := Open(net, Config{RoadPivots: 2, SocialPivots: 2, LeafSize: 2, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	answers, stats, err := db.QueryTopK(0, Query{GroupSize: 2, Gamma: 0.4, Theta: 0.4, Radius: 1.5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("expected at least one answer")
	}
	for i := 1; i < len(answers); i++ {
		if answers[i].MaxDistance < answers[i-1].MaxDistance-1e-12 {
			t.Error("answers not sorted by cost")
		}
	}
	seen := map[int]bool{}
	for _, a := range answers {
		if seen[a.Anchor] {
			t.Error("duplicate anchors in top-k")
		}
		seen[a.Anchor] = true
	}
	if stats.PageReads <= 0 {
		t.Error("stats missing")
	}
	// Top-1 must agree with Query.
	single, _, err := db.Query(0, Query{GroupSize: 2, Gamma: 0.4, Theta: 0.4, Radius: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if single.MaxDistance != answers[0].MaxDistance {
		t.Errorf("Query %v != top-1 %v", single.MaxDistance, answers[0].MaxDistance)
	}
	if _, _, err := db.QueryTopK(99, Query{GroupSize: 2, Radius: 1}, 2); err == nil {
		t.Error("bad user should error")
	}
	if _, _, err := db.QueryTopK(0, Query{GroupSize: 2, Radius: 1}, 0); err == nil {
		t.Error("k=0 should error")
	}
}
