package gpssn

import (
	"fmt"

	"gpssn/internal/gen"
)

// SyntheticOptions parameterize GenerateSynthetic, matching the synthetic
// data generation of the paper's Section 6.1. Zero values take the paper's
// defaults (Table 3 bold values: 30K road vertices, 30K users, 10K POIs).
type SyntheticOptions struct {
	// Name labels the dataset (defaults to a descriptive string).
	Name string
	// Seed makes generation deterministic.
	Seed int64
	// RoadVertices is |V(G_r)|; default 30000.
	RoadVertices int
	// Users is |V(G_s)|; default 30000.
	Users int
	// POIs is n; default 10000.
	POIs int
	// Topics is the vocabulary size d; default 8.
	Topics int
	// Zipf switches degree/keyword/interest draws from Uniform to Zipf
	// (the paper's UNI vs ZIPF datasets).
	Zipf bool
}

// GenerateSynthetic builds a synthetic spatial-social network (the UNI or
// ZIPF dataset family of the paper).
func GenerateSynthetic(o SyntheticOptions) (*Network, error) {
	dist := gen.Uniform
	if o.Zipf {
		dist = gen.Zipf
	}
	ds, err := gen.Synthetic(gen.Config{
		Name: o.Name, Seed: o.Seed,
		RoadVertices: o.RoadVertices, SocialUsers: o.Users,
		POIs: o.POIs, Topics: o.Topics, Dist: dist,
	})
	if err != nil {
		return nil, err
	}
	return &Network{ds: ds}, nil
}

// RealLikeKind selects one of the paper's two real spatial-social networks
// to emulate.
type RealLikeKind int

const (
	// BrightkiteCalifornia is the Bri+Cal dataset of Table 2 (40K users at
	// mean degree 10.3 over a 21K-vertex road network).
	BrightkiteCalifornia RealLikeKind = iota
	// GowallaColorado is the Gow+Col dataset of Table 2 (40K users at mean
	// degree 32.1 over a 30K-vertex road network).
	GowallaColorado
)

// GenerateRealLike builds a "real-like" stand-in for one of the paper's
// two real datasets: matched vertex counts, power-law social degrees with
// the published mean, low-degree planar road network, and check-in-derived
// interest vectors (see DESIGN.md for the substitution rationale). scale
// multiplies all object counts; use scale=1 for the published sizes.
func GenerateRealLike(kind RealLikeKind, seed int64, scale float64) (*Network, error) {
	var cfg gen.RealLikeConfig
	switch kind {
	case BrightkiteCalifornia:
		cfg = gen.BrightkiteCalifornia(seed, scale)
	case GowallaColorado:
		cfg = gen.GowallaColorado(seed, scale)
	default:
		return nil, fmt.Errorf("gpssn: unknown real-like dataset kind %d", int(kind))
	}
	ds, err := gen.RealLike(cfg)
	if err != nil {
		return nil, err
	}
	return &Network{ds: ds}, nil
}
