package gpssn

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// twinNetworks generates two independent but identical networks so a
// memo-on DB and a memo-off DB can receive the same update stream without
// sharing mutable state (Open does not clone the network it is given).
func twinNetworks(t testing.TB) (*Network, *Network) {
	t.Helper()
	gen := func() *Network {
		net, err := GenerateSynthetic(SyntheticOptions{
			Name: "sharedwork", Seed: 7,
			RoadVertices: 120, Users: 60, POIs: 40, Topics: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	return gen(), gen()
}

// mutateBoth applies the identical dynamic-update stream to both DBs so
// their networks stay twins; it mirrors the mix in concurrency_test.go.
func mutateBoth(t testing.TB, dbs ...*DB) {
	t.Helper()
	for _, db := range dbs {
		topics := db.Network().NumTopics()
		for i := 0; i < 3; i++ {
			if _, err := db.AddPOI(float64(i)+0.25, 0.75, i%topics); err != nil {
				t.Fatalf("AddPOI: %v", err)
			}
			interests := make([]float64, topics)
			interests[i%topics] = 0.8
			u, err := db.AddUser(0.75, float64(i)+0.25, interests)
			if err != nil {
				t.Fatalf("AddUser: %v", err)
			}
			if _, err := db.AddFriendship(i, u); err != nil {
				t.Fatalf("AddFriendship: %v", err)
			}
		}
		if err := db.Compact(); err != nil {
			t.Fatalf("Compact: %v", err)
		}
	}
}

// compareAnswers deep-compares Query and QueryTopK between the memo-on and
// memo-off DBs for a spread of users. This is the bit-identical gate: the
// shared-work layer must be invisible in every answer.
func compareAnswers(t *testing.T, on, off *DB, q Query, label string) {
	t.Helper()
	for _, u := range []int{0, 5, 11, 23, 37, 52} {
		a, _, errA := on.Query(u, q)
		b, _, errB := off.Query(u, q)
		if (errA == nil) != (errB == nil) || (errA != nil && !errors.Is(errA, errB) && !errors.Is(errB, errA)) {
			t.Fatalf("%s: user %d: error mismatch: memo-on %v, memo-off %v", label, u, errA, errB)
		}
		if errA == nil && !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: user %d: answers diverge:\n  memo-on:  %+v\n  memo-off: %+v", label, u, a, b)
		}
		ak, _, errA := on.QueryTopK(u, q, 3)
		bk, _, errB := off.QueryTopK(u, q, 3)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: user %d: top-k error mismatch: %v vs %v", label, u, errA, errB)
		}
		if !reflect.DeepEqual(ak, bk) {
			t.Fatalf("%s: user %d: top-k diverges:\n  memo-on:  %+v\n  memo-off: %+v", label, u, ak, bk)
		}
	}
}

// TestSharedWorkEquality is the acceptance gate for the shared-work layer:
// with the memo enabled, answers are bit-identical to solo execution at
// Parallelism 1 and 8 under every distance oracle, before and after a
// dynamic-update-plus-Compact cycle. The answer cache is off so every
// query actually reaches the engine.
func TestSharedWorkEquality(t *testing.T) {
	for _, oracle := range []string{"hl", "ch", "dijkstra"} {
		for _, par := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/P%d", oracle, par), func(t *testing.T) {
				netOn, netOff := twinNetworks(t)
				cfg := Config{
					RoadPivots: 3, SocialPivots: 3, LeafSize: 16, Fanout: 4,
					DistanceOracle: oracle, StrictOracle: true,
					Parallelism: par, CacheSize: 0,
				}
				on, err := Open(netOn, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfgOff := cfg
				cfgOff.DisableSharedWork = true
				off, err := Open(netOff, cfgOff)
				if err != nil {
					t.Fatal(err)
				}

				q := Query{GroupSize: 2, Gamma: 0.2, Theta: 0.3, Radius: 2}
				compareAnswers(t, on, off, q, "fresh")
				if st := on.SharedWorkStats(); !st.Enabled || st.BallHits+st.SweepHits == 0 {
					t.Fatalf("memo-on DB recorded no shared-work hits: %+v", st)
				}
				if st := off.SharedWorkStats(); st.Enabled {
					t.Fatalf("memo-off DB reports the memo enabled: %+v", st)
				}

				mutateBoth(t, on, off)
				compareAnswers(t, on, off, q, "post-update")
			})
		}
	}
}

// TestSharedWorkCancellation checks that cancelled and budget-starved
// queries interact safely with the memo: they fail or truncate the same
// way solo execution does, and they never leave a degraded entry behind —
// an unconstrained re-query still matches the memo-off twin exactly.
func TestSharedWorkCancellation(t *testing.T) {
	netOn, netOff := twinNetworks(t)
	cfg := Config{RoadPivots: 3, SocialPivots: 3, LeafSize: 16, Fanout: 4, CacheSize: 0}
	on, err := Open(netOn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgOff := cfg
	cfgOff.DisableSharedWork = true
	off, err := Open(netOff, cfgOff)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.2, Theta: 0.3, Radius: 2}

	// Warm the memo, then hit it with an already-cancelled context.
	if _, _, err := on.Query(0, q); err != nil && !errors.Is(err, ErrNoAnswer) {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := on.QueryCtx(ctx, 5, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled QueryCtx returned %v, want context.Canceled", err)
	}

	// A budget far too small for any real work: the query must degrade the
	// same way solo execution does (truncated answer or a budget error),
	// never panic, and never publish a starved ball into the memo.
	qb := q
	qb.Budget = Budget{MaxSettledVertices: 1}
	for _, u := range []int{0, 5, 11} {
		ans, _, err := on.QueryCtx(context.Background(), u, qb)
		if err == nil && !ans.Truncated {
			t.Fatalf("user %d: starved budget returned an untruncated answer %+v", u, ans)
		}
	}

	// The memo must still be canonical: unconstrained queries agree with
	// the memo-off twin bit-for-bit.
	compareAnswers(t, on, off, q, "post-cancel")
}

// TestSharedWorkRaceStress is the -race satellite: concurrent queriers
// hammer a memo-enabled DB while an updater interleaves AddPOI, AddUser,
// AddFriendship and a mid-flight Compact. Mid-flight answers must be
// well-formed; once quiesced, a memo-off twin receiving the identical
// update stream must agree bit-for-bit (no stale ball was ever published),
// the road version must have bumped for the post-Compact updates, and the
// rebuilt memo must still be taking hits.
func TestSharedWorkRaceStress(t *testing.T) {
	netOn, netOff := twinNetworks(t)
	cfg := Config{RoadPivots: 3, SocialPivots: 3, LeafSize: 16, Fanout: 4, CacheSize: 0}
	on, err := Open(netOn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgOff := cfg
	cfgOff.DisableSharedWork = true
	off, err := Open(netOff, cfgOff)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{GroupSize: 2, Gamma: 0.2, Theta: 0.3, Radius: 2}
	users := []int{0, 5, 11, 23, 37, 52}

	var wg sync.WaitGroup
	var failed atomic.Bool
	const queriers = 6
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 10; it++ {
				u := users[(g+it)%len(users)]
				ans, _, err := on.Query(u, q)
				if err != nil && !errors.Is(err, ErrNoAnswer) {
					t.Errorf("Query(%d): %v", u, err)
					failed.Store(true)
					return
				}
				if err == nil && (len(ans.Users) != q.GroupSize || ans.MaxDistance < 0) {
					t.Errorf("Query(%d): malformed answer %+v", u, ans)
					failed.Store(true)
					return
				}
			}
		}(g)
	}
	// The same deterministic update stream concurrency_test uses, with the
	// Compact placed so two AddPOIs land after it: the quiesced road
	// version must reflect those bumps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		topics := on.Network().NumTopics()
		for i := 0; i < 4; i++ {
			if _, err := on.AddPOI(float64(i), 0.5, i%topics); err != nil {
				t.Errorf("AddPOI: %v", err)
				failed.Store(true)
				return
			}
			interests := make([]float64, topics)
			interests[i%topics] = 0.9
			u, err := on.AddUser(0.5, float64(i), interests)
			if err != nil {
				t.Errorf("AddUser: %v", err)
				failed.Store(true)
				return
			}
			if _, err := on.AddFriendship(users[i], u); err != nil {
				t.Errorf("AddFriendship: %v", err)
				failed.Store(true)
				return
			}
			if i == 1 {
				if err := on.Compact(); err != nil {
					t.Errorf("Compact: %v", err)
					failed.Store(true)
					return
				}
			}
		}
	}()
	wg.Wait()
	if failed.Load() {
		t.FailNow()
	}

	// Two AddPOIs ran after the Compact reset the memo, so the rebuilt
	// memo must have observed their version bumps — the signal that no
	// pre-update ball can have survived.
	if st := on.SharedWorkStats(); st.RoadVersion < 2 {
		t.Fatalf("road version = %d after post-Compact updates, want >= 2", st.RoadVersion)
	}

	// Replay the identical stream on the memo-off twin, then the final
	// networks agree and so must every answer.
	topics := off.Network().NumTopics()
	for i := 0; i < 4; i++ {
		if _, err := off.AddPOI(float64(i), 0.5, i%topics); err != nil {
			t.Fatal(err)
		}
		interests := make([]float64, topics)
		interests[i%topics] = 0.9
		u, err := off.AddUser(0.5, float64(i), interests)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := off.AddFriendship(users[i], u); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			if err := off.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	compareAnswers(t, on, off, q, "quiesced")
	if st := on.SharedWorkStats(); st.BallHits+st.SweepHits == 0 {
		t.Fatalf("rebuilt memo took no hits during the quiesced comparison: %+v", st)
	}
}
